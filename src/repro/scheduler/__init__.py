"""Cyclic time-window scheduling (Section III's operational loop).

The paper's scheduler "is aware of the cloud platform status in real
time" and "directly include[s] all requests within a cyclic time
window during the execution of the allocation optimization process".
This package implements that loop:

* :mod:`events` — arrival/departure event stream;
* :class:`TimeWindowScheduler` — batches arrivals per window, hands
  each batch to any :class:`~repro.allocator.Allocator`, commits
  accepted placements into the shared
  :class:`~repro.model.state.PlatformState` and reports per-window
  metrics;
* :mod:`reconfiguration` — migration plans between successive
  allocations X^t → X^{t+1} with their Eq. 26 costs.
"""

from repro.scheduler.events import (
    ArrivalEvent,
    DepartureEvent,
    EventQueue,
    ServerFailureEvent,
    ServerRecoveryEvent,
)
from repro.scheduler.reconfiguration import MigrationPlan, plan_migration
from repro.scheduler.summary import SchedulerSummary, summarize_reports
from repro.scheduler.window import TimeWindowScheduler, WindowReport

__all__ = [
    "ArrivalEvent",
    "DepartureEvent",
    "ServerFailureEvent",
    "ServerRecoveryEvent",
    "EventQueue",
    "MigrationPlan",
    "plan_migration",
    "TimeWindowScheduler",
    "SchedulerSummary",
    "summarize_reports",
    "WindowReport",
]
