"""Aggregation of window reports into an operations summary."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.scheduler.window import WindowReport

__all__ = ["SchedulerSummary", "summarize_reports"]


@dataclass(frozen=True)
class SchedulerSummary:
    """Roll-up of a scheduler run (many windows)."""

    windows: int
    arrivals: int
    accepted: int
    rejected: int
    departures: int
    displaced: int
    failures: int
    recoveries: int
    total_allocation_time: float
    drains: int = 0

    @property
    def rejection_rate(self) -> float:
        """Overall rejected / (accepted + rejected)."""
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0


def summarize_reports(reports: list[WindowReport]) -> SchedulerSummary:
    """Fold per-window reports into one :class:`SchedulerSummary`.

    Note: re-placements after a failure appear in ``accepted``/
    ``rejected`` like any other window decision, so a displaced tenant
    that lands again is counted twice in ``accepted`` — the summary
    counts *decisions*, not distinct tenants.
    """
    if not reports:
        raise ValidationError("cannot summarize zero reports")
    return SchedulerSummary(
        windows=len(reports),
        arrivals=sum(len(r.arrivals) for r in reports),
        accepted=sum(len(r.accepted) for r in reports),
        rejected=sum(len(r.rejected) for r in reports),
        departures=sum(len(r.departures) for r in reports),
        displaced=sum(len(r.displaced) for r in reports),
        failures=sum(len(r.failures) for r in reports),
        recoveries=sum(len(r.recoveries) for r in reports),
        total_allocation_time=sum(
            r.outcome.elapsed for r in reports if r.outcome is not None
        ),
        drains=sum(len(r.drains) for r in reports),
    )
