"""Arrival/departure event stream for the time-window scheduler.

The scheduler consumes a time-ordered sequence of events: a consumer
request *arrives* at some time (and should be allocated in the next
window) or a hosted request *departs* (its capacity is released).  The
paper's future-work section mentions handling "platform and flow
events (user requests, platform failures, etc.)"; the event model here
covers requests and departures, and a failure event is expressible as
a departure injected by the caller.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.model.request import Request

__all__ = [
    "ArrivalEvent",
    "DepartureEvent",
    "ServerFailureEvent",
    "ServerRecoveryEvent",
    "EventQueue",
]


@dataclass(frozen=True)
class ArrivalEvent:
    """A consumer request entering the system at ``time``."""

    time: float
    key: str
    request: Request

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulerError(f"event time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class DepartureEvent:
    """A hosted request leaving (capacity released) at ``time``."""

    time: float
    key: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulerError(f"event time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class ServerFailureEvent:
    """Physical server ``server`` goes out of service at ``time``.

    The scheduler removes the server from the usable estate and
    *displaces* every resource hosted on it: affected tenants are
    released and re-enter the current window as re-placement requests
    (their previous assignment priced by the migration objective).
    This realizes the paper's future-work "platform failures" flow
    events.

    ``reason`` distinguishes an unplanned crash (``"failure"``) from a
    planned maintenance *drain* (``"drain"``, forced evacuation before
    servicing the host).  Both are handled identically by the window
    loop — the distinction exists for reporting and telemetry, and the
    drain-then-fail metamorphic law (:mod:`repro.verify.dynamic`)
    proves that a redundant failure of an already-drained server is a
    no-op.
    """

    time: float
    server: int
    reason: str = "failure"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulerError(f"event time must be >= 0, got {self.time}")
        if self.server < 0:
            raise SchedulerError(f"server id must be >= 0, got {self.server}")
        if self.reason not in ("failure", "drain"):
            raise SchedulerError(
                f"failure reason must be 'failure' or 'drain', got {self.reason!r}"
            )


@dataclass(frozen=True)
class ServerRecoveryEvent:
    """Server ``server`` returns to service at ``time``."""

    time: float
    server: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulerError(f"event time must be >= 0, got {self.time}")
        if self.server < 0:
            raise SchedulerError(f"server id must be >= 0, got {self.server}")


@dataclass
class EventQueue:
    """Min-heap of events ordered by time (FIFO within equal times)."""

    _heap: list[tuple[float, int, object]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def push(self, event) -> None:
        """Enqueue one event (any of the event dataclasses above)."""
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def push_all(self, events) -> None:
        """Enqueue an iterable of events."""
        for event in events:
            self.push(event)

    def pop_until(self, time: float) -> list:
        """Dequeue every event with ``event.time <= time``, in order."""
        out: list = []
        while self._heap and self._heap[0][0] <= time:
            out.append(heapq.heappop(self._heap)[2])
        return out

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def snapshot(self) -> list:
        """Pending events in pop order, without consuming them.

        Used by the scheduler checkpoint: re-pushing the returned list
        into a fresh queue reproduces the original pop order (the FIFO
        counter is re-derived from insertion order).
        """
        return [entry[2] for entry in sorted(self._heap, key=lambda e: e[:2])]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
