"""Reconfiguration (migration) plans between successive allocations.

Eq. 26 estimates the reconfiguration-plan size as the migration charge
of every resource whose host changes between X^t and X^{t+1}.
:func:`plan_migration` materializes the plan itself — the ordered list
of moves with source/destination servers — so operators (and the
scheduler example) can see *what* the estimate pays for, and
:class:`MigrationPlan` totals the Eq. 26 cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.types import IntArray

__all__ = ["MigrationPlan", "plan_migration"]


@dataclass(frozen=True)
class Move:
    """One resource relocation."""

    resource: int
    source: int
    destination: int
    cost: float


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered set of moves realizing X^t -> X^{t+1}."""

    moves: tuple[Move, ...]
    boots: tuple[int, ...]  # newly placed resources (no migration cost)
    shutdowns: tuple[int, ...]  # resources leaving the platform

    @property
    def total_cost(self) -> float:
        """The Eq. 26 sum over actual migrations."""
        return float(sum(m.cost for m in self.moves))

    @property
    def size(self) -> int:
        """Number of migrations (the plan-size estimate)."""
        return len(self.moves)

    def __len__(self) -> int:
        return len(self.moves)


def plan_migration(
    previous: IntArray, new: IntArray, request: Request
) -> MigrationPlan:
    """Diff two assignments of the same request into a migration plan.

    ``previous`` is X^t, ``new`` is X^{t+1}; both are flat genomes of
    length request.n with :data:`UNPLACED` allowed.  A resource placed
    in both but on different servers is a *move* (pays M_k); placed
    only in ``new`` is a *boot*; placed only in ``previous`` is a
    *shutdown*.
    """
    previous = np.asarray(previous, dtype=np.int64)
    new = np.asarray(new, dtype=np.int64)
    if previous.shape != (request.n,) or new.shape != (request.n,):
        raise DimensionError(
            f"assignments must have shape ({request.n},), got "
            f"{previous.shape} and {new.shape}"
        )
    moves: list[Move] = []
    boots: list[int] = []
    shutdowns: list[int] = []
    for k in range(request.n):
        src, dst = int(previous[k]), int(new[k])
        if src == UNPLACED and dst == UNPLACED:
            continue
        if src == UNPLACED:
            boots.append(k)
        elif dst == UNPLACED:
            shutdowns.append(k)
        elif src != dst:
            moves.append(
                Move(
                    resource=k,
                    source=src,
                    destination=dst,
                    cost=float(request.migration_cost[k]),
                )
            )
    return MigrationPlan(
        moves=tuple(moves), boots=tuple(boots), shutdowns=tuple(shutdowns)
    )
