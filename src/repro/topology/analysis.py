"""Structural analysis of the spine-leaf fabric.

The architecture is chosen for "managing both redundancy and
bandwidth" (paper Section III); these functions quantify exactly that:

* :func:`path_redundancy` — edge-disjoint paths between two servers
  (how many independent failures the pair survives);
* :func:`hop_distance` — shortest-path length, the latency proxy the
  affinity rules trade against availability;
* :func:`oversubscription_ratio` — downlink/uplink bandwidth ratio at
  the leaf tier, the classic fabric sizing metric.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.spine_leaf import SpineLeafFabric

__all__ = [
    "path_redundancy",
    "hop_distance",
    "hop_matrix",
    "oversubscription_ratio",
]


def _check_server(fabric: SpineLeafFabric, server: str) -> None:
    data = fabric.graph.nodes.get(server)
    if data is None or data.get("tier") != "server":
        raise TopologyError(f"{server!r} is not a server node of this fabric")


def path_redundancy(fabric: SpineLeafFabric, a: str, b: str) -> int:
    """Number of edge-disjoint paths between servers ``a`` and ``b``.

    Servers are single-homed, so the fabric-wide maximum is 1 at the
    server links; the interesting quantity is redundancy between the
    *leaves*, which is what this returns for servers on different
    leaves (spine count within a datacenter, core-limited across).
    Same-leaf (and same-server) pairs return the trivial 1.
    """
    _check_server(fabric, a)
    _check_server(fabric, b)
    if a == b:
        return 1
    leaf_a, leaf_b = fabric.leaf_of(a), fabric.leaf_of(b)
    if leaf_a == leaf_b:
        return 1
    return nx.edge_connectivity(fabric.graph, leaf_a, leaf_b)


def hop_distance(fabric: SpineLeafFabric, a: str, b: str) -> int:
    """Shortest-path hop count between two servers.

    0 for the same server; 2 same leaf; 4 same datacenter, different
    leaves; 6 across datacenters (server-leaf-spine-core-spine-leaf-
    server).
    """
    _check_server(fabric, a)
    _check_server(fabric, b)
    if a == b:
        return 0
    return nx.shortest_path_length(fabric.graph, a, b)


def hop_matrix(fabric: SpineLeafFabric):
    """All-pairs server hop distances as an (m, m) float matrix.

    Exploits the regular structure instead of running BFS per pair:
    0 on the diagonal, 2 within a leaf, 4 within a datacenter, 6
    across datacenters (per :func:`hop_distance`'s path shapes).  The
    structural shortcut is asserted against networkx in the tests.
    """
    import numpy as np

    servers = fabric.server_nodes
    leaves = np.asarray(
        [fabric.leaf_of(server) for server in servers], dtype=object
    )
    dcs = fabric.server_datacenter
    m = len(servers)
    same_leaf = leaves[:, None] == leaves[None, :]
    same_dc = dcs[:, None] == dcs[None, :]
    matrix = np.full((m, m), 6.0)
    matrix[same_dc] = 4.0
    matrix[same_leaf] = 2.0
    np.fill_diagonal(matrix, 0.0)
    return matrix


def oversubscription_ratio(fabric: SpineLeafFabric) -> float:
    """Leaf-tier oversubscription: total server downlink bandwidth per
    leaf divided by its total spine uplink bandwidth.

    1.0 means a non-blocking leaf; > 1 means contention under full
    server load — the provider-side capacity/availability trade the
    allocation objectives monetize.
    """
    spec = fabric.spec
    downlink = spec.servers_per_leaf * spec.server_link_gbps
    uplink = spec.spines * spec.leaf_uplink_gbps
    if uplink <= 0:  # pragma: no cover - spec validation forbids it
        raise TopologyError("leaf has no uplink bandwidth")
    return downlink / uplink
