"""Construction of the spine-leaf fabric (paper Figure 1).

Topology shape, per datacenter::

    core tier (shared across datacenters)
      |     full mesh to every spine
    spine tier (n_spines switches)
      |     full bipartite mesh to every leaf
    leaf tier (n_leaves top-of-rack switches)
      |     servers_per_leaf servers each

Node naming: ``core:{c}``, ``dc{i}/spine:{s}``, ``dc{i}/leaf:{l}``,
``dc{i}/srv:{x}`` — stable strings usable as graph keys and report
labels.  Edges carry a ``bandwidth`` attribute (Gbps) and a ``tier``
label (``core-spine``, ``spine-leaf``, ``leaf-server``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.model.attributes import DEFAULT_ATTRIBUTES, AttributeSchema
from repro.model.infrastructure import Infrastructure

__all__ = ["FabricSpec", "SpineLeafFabric"]


@dataclass(frozen=True)
class FabricSpec:
    """Shape of one spine-leaf datacenter fabric.

    Parameters
    ----------
    datacenters:
        Number of datacenters joined at the core tier.
    spines, leaves, servers_per_leaf:
        Per-datacenter tier sizes.
    cores:
        Core switches joining the datacenters (0 allowed when
        ``datacenters == 1``).
    leaf_uplink_gbps, server_link_gbps, core_link_gbps:
        Link bandwidths per tier.
    """

    datacenters: int = 1
    spines: int = 2
    leaves: int = 4
    servers_per_leaf: int = 8
    cores: int = 2
    leaf_uplink_gbps: float = 40.0
    server_link_gbps: float = 10.0
    core_link_gbps: float = 100.0

    def __post_init__(self) -> None:
        for name in ("datacenters", "spines", "leaves", "servers_per_leaf"):
            if getattr(self, name) < 1:
                raise ValidationError(f"{name} must be >= 1")
        if self.cores < 0:
            raise ValidationError("cores must be >= 0")
        if self.datacenters > 1 and self.cores < 1:
            raise TopologyError(
                "multiple datacenters need at least one core switch"
            )
        for name in ("leaf_uplink_gbps", "server_link_gbps", "core_link_gbps"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be > 0")

    @property
    def servers_per_datacenter(self) -> int:
        """Hosts per datacenter."""
        return self.leaves * self.servers_per_leaf

    @property
    def total_servers(self) -> int:
        """Hosts across the whole fabric."""
        return self.datacenters * self.servers_per_datacenter


@dataclass
class SpineLeafFabric:
    """A constructed fabric: graph + node bookkeeping."""

    spec: FabricSpec
    graph: nx.Graph = field(init=False)
    server_nodes: list[str] = field(init=False)
    server_datacenter: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        spec = self.spec
        graph = nx.Graph()
        server_nodes: list[str] = []
        server_dc: list[int] = []

        core_nodes = [f"core:{c}" for c in range(spec.cores)]
        for node in core_nodes:
            graph.add_node(node, tier="core")

        for i in range(spec.datacenters):
            spine_nodes = [f"dc{i}/spine:{s}" for s in range(spec.spines)]
            leaf_nodes = [f"dc{i}/leaf:{l}" for l in range(spec.leaves)]
            for node in spine_nodes:
                graph.add_node(node, tier="spine", datacenter=i)
            for node in leaf_nodes:
                graph.add_node(node, tier="leaf", datacenter=i)
            for core in core_nodes:
                for spine in spine_nodes:
                    graph.add_edge(
                        core,
                        spine,
                        tier="core-spine",
                        bandwidth=spec.core_link_gbps,
                    )
            for spine in spine_nodes:
                for leaf in leaf_nodes:
                    graph.add_edge(
                        spine,
                        leaf,
                        tier="spine-leaf",
                        bandwidth=spec.leaf_uplink_gbps,
                    )
            for l, leaf in enumerate(leaf_nodes):
                for x in range(spec.servers_per_leaf):
                    server = f"dc{i}/srv:{l * spec.servers_per_leaf + x}"
                    graph.add_node(server, tier="server", datacenter=i)
                    graph.add_edge(
                        leaf,
                        server,
                        tier="leaf-server",
                        bandwidth=spec.server_link_gbps,
                    )
                    server_nodes.append(server)
                    server_dc.append(i)

        self.graph = graph
        self.server_nodes = server_nodes
        self.server_datacenter = np.asarray(server_dc, dtype=np.int64)
        self._validate()

    def _validate(self) -> None:
        if not nx.is_connected(self.graph):
            raise TopologyError("fabric graph is not connected")
        for node, data in self.graph.nodes(data=True):
            if data["tier"] == "server" and self.graph.degree[node] != 1:
                raise TopologyError(f"server {node} must attach to exactly one leaf")

    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        """Total hosts in the fabric."""
        return len(self.server_nodes)

    def leaf_of(self, server: str) -> str:
        """The top-of-rack switch a server hangs off."""
        neighbors = list(self.graph.neighbors(server))
        if len(neighbors) != 1:  # pragma: no cover - guarded by _validate
            raise TopologyError(f"{server} is not a single-homed server")
        return neighbors[0]

    # ------------------------------------------------------------------
    def to_infrastructure(
        self,
        capacity,
        capacity_factor=None,
        operating_cost: float | np.ndarray = 1.0,
        usage_cost: float | np.ndarray = 1.0,
        max_load: float = 0.8,
        max_qos: float = 0.99,
        schema: AttributeSchema = DEFAULT_ATTRIBUTES,
    ) -> Infrastructure:
        """Flatten the fabric into the matrix model.

        ``capacity`` is either one row (homogeneous servers) or a full
        (n_servers, h) matrix; cost arguments accept scalars or
        per-server vectors.
        """
        m = self.n_servers
        capacity = np.asarray(capacity, dtype=np.float64)
        if capacity.ndim == 1:
            capacity = np.tile(capacity, (m, 1))
        factor = (
            np.ones((m, schema.h))
            if capacity_factor is None
            else np.asarray(capacity_factor, dtype=np.float64)
        )
        if factor.ndim == 1:
            factor = np.tile(factor, (m, 1))

        def vec(value) -> np.ndarray:
            arr = np.asarray(value, dtype=np.float64)
            return np.full(m, float(arr)) if arr.ndim == 0 else arr

        return Infrastructure(
            capacity=capacity,
            capacity_factor=factor,
            operating_cost=vec(operating_cost),
            usage_cost=vec(usage_cost),
            max_load=np.full((m, schema.h), max_load),
            max_qos=np.full((m, schema.h), max_qos),
            server_datacenter=self.server_datacenter,
            schema=schema,
            server_names=tuple(self.server_nodes),
            datacenter_names=tuple(
                f"dc{i}" for i in range(self.spec.datacenters)
            ),
        )
