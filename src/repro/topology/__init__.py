"""Physical datacenter topology: the Core/Leaf-Spine fabric of Figure 1.

The paper grounds its model in "a very popular cloud architecture ...
the Core/Leaf-Spine distributed network architecture" (Al-Fares et al.,
Alizadeh & Edsall, Greenberg et al.).  This package builds that fabric
as a :mod:`networkx` graph — core switches joining datacenters, spine
and leaf tiers inside each, servers hanging off leaves — and derives
the structural quantities the architecture is chosen for: path
redundancy between any two servers, oversubscription ratios, and hop
distances (which the examples use to reason about affinity rules:
same-leaf traffic is 2 hops, cross-datacenter is 6).

:meth:`SpineLeafFabric.to_infrastructure` flattens the fabric into the
matrix :class:`~repro.model.infrastructure.Infrastructure` the
allocation algorithms consume, so examples can start from hardware
shape rather than raw matrices.
"""

from repro.topology.spine_leaf import FabricSpec, SpineLeafFabric
from repro.topology.analysis import (
    hop_distance,
    hop_matrix,
    oversubscription_ratio,
    path_redundancy,
)

__all__ = [
    "FabricSpec",
    "SpineLeafFabric",
    "hop_distance",
    "hop_matrix",
    "oversubscription_ratio",
    "path_redundancy",
]
