"""repro.market — multi-cloud market brokering on top of the allocator.

The paper optimizes consumer and provider criteria inside a single
datacenter estate.  This package extends the model to *N providers with
distinct price books* and brokers each request bundle across them (the
López-Pires multi-cloud brokering direction), in three layers:

* :mod:`repro.market.preferences` — ceteris-paribus preference orders
  (``provider_cost>qos>migration``-style specs) that deterministically
  select the deployed solution from any Pareto front, replacing the
  implicit ideal-point pick wherever a single plan is committed;
* :mod:`repro.market.providers` — :class:`PriceBook` (static multiplier
  plus a deterministic dynamic price curve), :class:`Provider` and
  :class:`ProviderMarket`, which compiles N provider estates into one
  provider-tagged :class:`~repro.model.infrastructure.Infrastructure`
  whose cost vectors carry the prices in force at a given time;
* :mod:`repro.market.broker` — :class:`BrokeredAllocator`, which solves
  the bundle per provider *and* as a brokered cross-provider split,
  merges the per-provider fronts into one brokered Pareto front, and
  deploys the preference-selected plan.

The single-provider path is byte-identical to the pre-market code:
one default provider compiles to today's matrices and fingerprints
(enforced by ``python -m repro verify --check-market``).  The full
story — provider model, price-book grammar, brokering flow, preference
spec grammar and a worked example — lives in ``docs/MARKET.md``.
"""

from repro.market.broker import (
    BrokeredAllocator,
    BrokeredOutcome,
    BrokeredPlan,
)
from repro.market.preferences import (
    PREFERENCE_CRITERIA,
    PreferenceOrder,
    active_preference,
    parse_preference,
    select_index,
    set_preference,
)
from repro.market.providers import (
    MarketInstance,
    PriceBook,
    Provider,
    ProviderMarket,
)

__all__ = [
    "BrokeredAllocator",
    "BrokeredOutcome",
    "BrokeredPlan",
    "MarketInstance",
    "PREFERENCE_CRITERIA",
    "PreferenceOrder",
    "PriceBook",
    "Provider",
    "ProviderMarket",
    "active_preference",
    "parse_preference",
    "select_index",
    "set_preference",
]
