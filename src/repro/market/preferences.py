"""Ceteris-paribus preference orders over the objective space.

The paper commits a single solution per window by *implicit* ideal-point
distance — a reasonable default, but one the operator cannot steer.
Following Alashaikh/Alanazi's preference-based placement, this module
makes the final pick an *explicit, validated input*: a strict importance
order over the objective criteria, written ``provider_cost>qos>migration``.

Semantics.  A ceteris-paribus order prefers solution *a* over *b* when
*a* is better on the most important criterion on which they differ,
everything else held equal.  Over a finite mutually-nondominated front,
the deterministic completion of that order is lexicographic: minimize
the most important criterion first, break ties by the next one, then by
the remaining canonical columns.  The selection is therefore

* **total** — every non-empty front yields exactly one objective vector;
* **deterministic** — no RNG, no wall clock, byte-stable per front;
* **permutation-invariant** — reordering the front's rows cannot change
  the selected objective vector (ties beyond all columns are exact
  duplicates).

When *no* preference is active (``None``), selection falls back to the
paper's normalized ideal-point distance, byte-identical to the
pre-market code — that keeps every historical trajectory reproducible.
An active order participates in checkpoint trajectory keys
(:data:`repro.runtime.checkpoint._TRAJECTORY_FIELDS`), because it
changes which plan the scheduler, service reoptimizer and portfolio
commit.  Grammar and worked examples: ``docs/MARKET.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.types import FloatArray

__all__ = [
    "PREFERENCE_CRITERIA",
    "PreferenceOrder",
    "parse_preference",
    "select_index",
    "set_preference",
    "active_preference",
]

#: Criterion name → canonical objective column.  The objective matrix is
#: the evaluator's (pop, 3) layout: column 0 is usage+operating provider
#: cost (the optional energy term rides in it, weighted), column 1 the
#: QoS/downtime charge, column 2 the migration cost.  Aliases map
#: operator vocabulary onto those columns.
PREFERENCE_CRITERIA: dict[str, int] = {
    "provider_cost": 0,
    "cost": 0,
    "energy": 0,
    "qos": 1,
    "downtime": 1,
    "migration": 2,
}

#: Canonical column order used to complete partial specs.
_ALL_COLUMNS = (0, 1, 2)


@dataclass(frozen=True)
class PreferenceOrder:
    """A validated strict importance order over objective criteria.

    Attributes
    ----------
    criteria:
        The criterion names as written, most important first.
    columns:
        The full column priority: the spec's columns in order, then the
        remaining canonical columns as implicit lowest-priority
        tie-breaks.
    spec:
        The normalized spec string (``">"``-joined criteria) — the
        canonical serialized form used in trajectory keys and CLI
        round-trips.
    """

    criteria: tuple[str, ...]
    columns: tuple[int, ...]

    @property
    def spec(self) -> str:
        return ">".join(self.criteria)

    def key(self, objectives: FloatArray) -> tuple[float, ...]:
        """The comparison key of one objective vector under this order."""
        vec = np.asarray(objectives, dtype=np.float64)
        return tuple(float(vec[c]) for c in self.columns)

    def select(self, objectives: FloatArray) -> int:
        """Index of the preferred row of an (k, 3) objective matrix.

        Lexicographic minimization over :attr:`columns`; among exact
        duplicates the lowest row index wins (the duplicate rows carry
        identical objective vectors, so the *selected vector* is
        invariant under any permutation of the front).
        """
        objs = np.asarray(objectives, dtype=np.float64)
        if objs.ndim != 2 or objs.shape[0] == 0:
            raise ValidationError(
                "preference selection needs a non-empty 2-D objective matrix"
            )
        # np.lexsort sorts by the *last* key first — feed priorities in
        # reverse so columns[0] dominates.  lexsort is stable, so exact
        # duplicates resolve to the lowest index.
        keys = tuple(objs[:, c] for c in reversed(self.columns))
        return int(np.lexsort(keys)[0])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.spec


def parse_preference(spec: str) -> PreferenceOrder:
    """Parse and validate a ``crit>crit>...`` preference spec.

    Raises
    ------
    ValidationError
        On empty specs, unknown criterion names, or two criteria that
        alias the same objective column (the order would be ambiguous).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValidationError("preference spec must be a non-empty string")
    names = [chunk.strip() for chunk in spec.split(">")]
    if any(not name for name in names):
        raise ValidationError(
            f"malformed preference spec {spec!r}: empty criterion "
            "(write e.g. 'provider_cost>qos>migration')"
        )
    criteria: list[str] = []
    columns: list[int] = []
    for name in names:
        column = PREFERENCE_CRITERIA.get(name.lower())
        if column is None:
            raise ValidationError(
                f"unknown preference criterion {name!r}; pick from "
                f"{', '.join(sorted(set(PREFERENCE_CRITERIA)))}"
            )
        if column in columns:
            clash = criteria[columns.index(column)]
            raise ValidationError(
                f"criterion {name!r} repeats the objective column already "
                f"ranked by {clash!r}"
            )
        criteria.append(name.lower())
        columns.append(column)
    columns.extend(c for c in _ALL_COLUMNS if c not in columns)
    return PreferenceOrder(criteria=tuple(criteria), columns=tuple(columns))


def select_index(
    objectives: FloatArray, preference: PreferenceOrder | None = None
) -> int:
    """The deployed-solution pick over a front's objective matrix.

    With a :class:`PreferenceOrder`, the ceteris-paribus selection; with
    ``None``, the paper's normalized ideal-point distance — bit-for-bit
    the historical computation, so default runs stay byte-identical.
    """
    objs = np.asarray(objectives, dtype=np.float64)
    if objs.ndim != 2 or objs.shape[0] == 0:
        raise ValidationError(
            "selection needs a non-empty 2-D objective matrix"
        )
    if preference is not None:
        return preference.select(objs)
    lo = objs.min(axis=0)
    span = objs.max(axis=0) - lo
    span = np.where(span > 0, span, 1.0)
    normalized = (objs - lo) / span
    distances = np.sqrt((normalized**2).sum(axis=1))
    return int(np.argmin(distances))


# ----------------------------------------------------------------------
# Process-wide active preference (the CLI's --prefer flag).
# ----------------------------------------------------------------------
_ACTIVE: PreferenceOrder | None = None


def set_preference(spec: str | PreferenceOrder | None) -> PreferenceOrder | None:
    """Install (or clear, with ``None``) the process-wide preference.

    Every selection site that commits a single plan — EA result picks,
    the incumbent pool, the portfolio's judged pick — consults this
    through :func:`active_preference` when no explicit order was passed,
    so one CLI flag steers the whole stack.  Returns the installed
    order.
    """
    global _ACTIVE
    if spec is None:
        _ACTIVE = None
    elif isinstance(spec, PreferenceOrder):
        _ACTIVE = spec
    else:
        _ACTIVE = parse_preference(spec)
    return _ACTIVE


def active_preference() -> PreferenceOrder | None:
    """The process-wide preference order, or ``None`` (ideal point)."""
    return _ACTIVE
