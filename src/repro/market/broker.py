"""BrokeredAllocator: split a request bundle across cloud providers.

The broker receives one bundle of consumer requests and a
:class:`~repro.market.providers.ProviderMarket`.  It compiles the
market at the requested logical time (so each provider's dynamic
prices are in force), then builds one *candidate plan* per route:

* ``provider:<name>`` — the whole bundle confined to that provider's
  estate.  Confinement reuses the scheduler's blocking trick: servers
  outside the provider are pre-loaded to full effective capacity via
  ``base_usage``, so any inner allocator honours the boundary without
  provider-aware code.
* ``split`` — the bundle solved over the whole market at once, free to
  spread across providers wherever the priced cost vectors make that
  profitable.

Every plan is scored on the *same* merged instance (identical objective
semantics), then checked against the market-layer constraints: QoS
co-location (each request wholly inside one provider — a request is the
broker's atomic unit) and optional per-provider quotas.  Plans that
violate market constraints are excluded from the brokered front unless
no clean plan exists.  The surviving plans' objective vectors are
filtered to mutual non-domination — the **brokered Pareto front** — and
the deployed plan is chosen by the preference layer
(:func:`repro.market.preferences.select_index`): the active
ceteris-paribus order when one is set, the paper's ideal-point pick
otherwise.

Every step is deterministic per seed: provider routes are tried in
provider order, the inner allocator is rebuilt per route from the same
factory, and selection is RNG-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.allocator import Allocator, BatchOutcome
from repro.constraints.provider import (
    ProviderQuotaConstraint,
    SameProviderConstraint,
)
from repro.errors import ValidationError
from repro.market.preferences import (
    PreferenceOrder,
    active_preference,
    select_index,
)
from repro.market.providers import MarketInstance, ProviderMarket
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.telemetry import get_registry, span
from repro.types import FloatArray, IntArray
from repro.utils.pareto import non_dominated_mask

__all__ = ["BrokeredPlan", "BrokeredOutcome", "BrokeredAllocator"]


@dataclass(frozen=True)
class BrokeredPlan:
    """One deployable candidate: a route and its full allocation.

    Attributes
    ----------
    route:
        ``provider:<name>`` for single-provider confinement, ``split``
        for the free cross-provider solve.
    outcome:
        The inner allocator's :class:`~repro.allocator.BatchOutcome`
        over the merged market instance (global server indices).
    objectives:
        The plan's (3,) objective vector (= ``outcome.objectives``).
    market_violations:
        QoS-colocation + quota violations of the market layer (0 for a
        clean brokered plan; instance-level violations are counted in
        ``outcome.violations`` as usual).
    provider_of_request:
        Per-request provider id, or -1 for a rejected/straddling
        request — the brokered routing table.
    """

    route: str
    outcome: BatchOutcome
    objectives: FloatArray
    market_violations: int
    provider_of_request: IntArray

    @property
    def clean(self) -> bool:
        """Deployable without breaking any market-layer rule."""
        return self.market_violations == 0 and self.outcome.violations == 0


@dataclass(frozen=True)
class BrokeredOutcome:
    """What the broker did with one bundle.

    ``front`` holds the mutually-nondominated deployable plans (the
    brokered Pareto front); ``deployed`` is the preference-selected
    member; ``plans`` keeps every candidate for diagnostics.
    """

    instance: MarketInstance
    plans: tuple[BrokeredPlan, ...]
    front: tuple[BrokeredPlan, ...]
    deployed: BrokeredPlan
    preference_spec: str | None

    @property
    def front_objectives(self) -> FloatArray:
        """(k, 3) objective matrix of the brokered front."""
        return np.stack([plan.objectives for plan in self.front])


class BrokeredAllocator:
    """Market-level allocator racing routes across N providers.

    Parameters
    ----------
    market:
        The participating providers and their price books.
    allocator_factory:
        Zero-argument callable building a fresh inner
        :class:`~repro.allocator.Allocator` per route (fresh state
        keeps routes independent and seed-deterministic).
    preference:
        Explicit :class:`~repro.market.preferences.PreferenceOrder` for
        the deployed pick; ``None`` defers to the process-wide active
        preference, then to the ideal-point default.
    quotas:
        Optional per-provider VM caps for the split route (negative =
        unlimited); see
        :class:`~repro.constraints.provider.ProviderQuotaConstraint`.
    qos_colocation:
        When True (default), a request straddling two providers in the
        split route counts market violations — requests are atomic
        brokering units.
    """

    def __init__(
        self,
        market: ProviderMarket,
        allocator_factory: Callable[[], Allocator],
        preference: PreferenceOrder | None = None,
        quotas: Sequence[int] | None = None,
        qos_colocation: bool = True,
    ) -> None:
        self.market = market
        self.allocator_factory = allocator_factory
        self.preference = preference
        self.quotas = None if quotas is None else tuple(int(q) for q in quotas)
        if self.quotas is not None and len(self.quotas) != len(market):
            raise ValidationError(
                f"{len(self.quotas)} quotas for {len(market)} providers"
            )
        self.qos_colocation = qos_colocation

    # ------------------------------------------------------------------
    def allocate(
        self,
        requests: Sequence[Request],
        at: float = 0.0,
        base_usage: FloatArray | None = None,
    ) -> BrokeredOutcome:
        """Broker one bundle at logical time ``at``."""
        requests = list(requests)
        if not requests:
            raise ValidationError("the broker needs a non-empty bundle")
        instance = self.market.compile(at=at)
        infrastructure = instance.infrastructure
        merged, owner = Request.concatenate(requests)
        registry = get_registry()

        plans: list[BrokeredPlan] = []
        with span("market.broker", providers=instance.p, requests=len(requests)):
            for k in range(instance.p):
                blocked = self._blocked_outside(instance, k, base_usage)
                outcome = self._solve(
                    infrastructure, requests, blocked
                )
                plans.append(
                    self._plan(f"provider:{self.market.names[k]}", outcome, instance, owner, merged)
                )
            if instance.p > 1:
                outcome = self._solve(infrastructure, requests, base_usage)
                plans.append(self._plan("split", outcome, instance, owner, merged))

        clean = [plan for plan in plans if plan.clean]
        pool = clean if clean else plans
        objectives = np.stack([plan.objectives for plan in pool])
        mask = non_dominated_mask(objectives)
        front = tuple(plan for plan, keep in zip(pool, mask) if keep)

        preference = (
            self.preference if self.preference is not None else active_preference()
        )
        deployed = front[
            select_index(
                np.stack([plan.objectives for plan in front]), preference
            )
        ]
        registry.count("market.broker.bundles")
        registry.count("market.broker.plans", len(plans))
        registry.gauge("market.broker.front_size", len(front))
        registry.gauge(
            "market.broker.deployed_cost", float(deployed.objectives[0])
        )
        return BrokeredOutcome(
            instance=instance,
            plans=tuple(plans),
            front=front,
            deployed=deployed,
            preference_spec=None if preference is None else preference.spec,
        )

    # ------------------------------------------------------------------
    def _solve(
        self,
        infrastructure,
        requests: Sequence[Request],
        base_usage: FloatArray | None,
    ) -> BatchOutcome:
        allocator = self.allocator_factory()
        try:
            return allocator.allocate(
                infrastructure, list(requests), base_usage=base_usage
            )
        finally:
            allocator.close()

    @staticmethod
    def _blocked_outside(
        instance: MarketInstance, provider: int, base_usage: FloatArray | None
    ) -> FloatArray:
        """Usage matrix pre-loading every server *outside* ``provider``."""
        effective = instance.infrastructure.effective_capacity
        blocked = (
            np.zeros_like(effective) if base_usage is None else base_usage.copy()
        )
        outside = instance.infrastructure.provider_of_server != provider
        blocked[outside] = np.maximum(blocked[outside], effective[outside])
        return blocked

    def _plan(
        self,
        route: str,
        outcome: BatchOutcome,
        instance: MarketInstance,
        owner: IntArray,
        merged: Request,
    ) -> BrokeredPlan:
        """Score one route's outcome against the market-layer rules."""
        assignment = outcome.assignment
        provider_of_server = instance.infrastructure.provider_of_server
        n_requests = int(owner.max()) + 1 if owner.size else 0
        provider_of_request = np.full(n_requests, -1, dtype=np.int64)
        market_violations = 0

        for r in range(n_requests):
            genes = assignment[owner == r]
            placed = genes[genes != UNPLACED]
            if placed.size == 0 or not outcome.accepted[r]:
                continue
            providers = np.unique(provider_of_server[placed])
            if providers.size == 1:
                provider_of_request[r] = int(providers[0])
            elif self.qos_colocation:
                # Same counting rule as SameProviderConstraint: extra
                # distinct providers beyond the first are violations.
                members = tuple(np.flatnonzero(owner == r))
                if len(members) >= 2:
                    market_violations += SameProviderConstraint(
                        members, provider_of_server
                    ).violations(assignment)

        if self.quotas is not None:
            market_violations += ProviderQuotaConstraint(
                provider_of_server, np.asarray(self.quotas, dtype=np.int64)
            ).violations(assignment)

        return BrokeredPlan(
            route=route,
            outcome=outcome,
            objectives=np.asarray(outcome.objectives, dtype=np.float64),
            market_violations=int(market_violations),
            provider_of_request=provider_of_request,
        )
