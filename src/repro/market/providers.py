"""Providers, price books and the market → infrastructure compilation.

A *market* is N providers, each owning an estate (an
:class:`~repro.model.infrastructure.Infrastructure`) and charging by a
:class:`PriceBook`: a static multiplier pair over the paper's E/U cost
vectors plus a deterministic *dynamic price curve* (flat, diurnal
sinusoid, or linear trend) evaluated at a logical time.  Compiling the
market at time *t* concatenates the provider estates into one
provider-tagged infrastructure whose operating/usage cost vectors carry
the prices in force at *t* — so the usage-cost objective (Eq. 22) and
the energy term price themselves per provider with **zero** changes to
the evaluation hot path, and every downstream layer (constraints, EA,
CP, scheduler) sees a perfectly ordinary instance.

The degenerate one-provider market with the neutral price book compiles
to matrices byte-identical to its input infrastructure — the
``verify --check-market`` differential anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.model.infrastructure import Infrastructure
from repro.types import FloatArray, IntArray

__all__ = ["PriceBook", "Provider", "ProviderMarket", "MarketInstance"]

#: Dynamic price curve shapes a price book may declare.
_CURVES = ("flat", "diurnal", "trend")


@dataclass(frozen=True)
class PriceBook:
    """One provider's tariff over the paper's cost vectors.

    Parameters
    ----------
    operating_rate:
        Static multiplier on the estate's operating-cost vector E.
    usage_rate:
        Static multiplier on the usage-cost vector U.
    curve:
        Dynamic shape applied on top of the static rates: ``flat``
        (constant 1), ``diurnal`` (``1 + amplitude*sin(2π(t+phase)/period)``)
        or ``trend`` (``1 + amplitude*t/period``).
    amplitude, period, phase:
        Curve parameters; amplitude must keep prices positive.
    """

    operating_rate: float = 1.0
    usage_rate: float = 1.0
    curve: str = "flat"
    amplitude: float = 0.0
    period: float = 24.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.operating_rate < 0 or self.usage_rate < 0:
            raise ValidationError("price-book rates must be >= 0")
        if self.curve not in _CURVES:
            raise ValidationError(
                f"unknown price curve {self.curve!r}; pick from {_CURVES}"
            )
        if self.period <= 0:
            raise ValidationError("price-curve period must be > 0")
        if self.curve == "diurnal" and not (0 <= self.amplitude < 1):
            raise ValidationError(
                "diurnal amplitude must lie in [0, 1) to keep prices positive"
            )
        if self.curve == "trend" and self.amplitude < 0:
            raise ValidationError("trend amplitude must be >= 0")

    # ------------------------------------------------------------------
    def multiplier_at(self, time: float) -> float:
        """The dynamic factor in force at logical ``time``."""
        if self.curve == "flat":
            return 1.0
        if self.curve == "diurnal":
            return 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * (time + self.phase) / self.period
            )
        return 1.0 + self.amplitude * time / self.period  # trend

    def price_at(self, time: float) -> tuple[float, float]:
        """(operating, usage) multipliers in force at ``time``."""
        dyn = self.multiplier_at(time)
        return self.operating_rate * dyn, self.usage_rate * dyn

    @property
    def is_neutral(self) -> bool:
        """True when the book never changes a cost vector (identity)."""
        return (
            self.operating_rate == 1.0
            and self.usage_rate == 1.0
            and (self.curve == "flat" or self.amplitude == 0.0)
        )

    def to_dict(self) -> dict:
        return {
            "operating_rate": self.operating_rate,
            "usage_rate": self.usage_rate,
            "curve": self.curve,
            "amplitude": self.amplitude,
            "period": self.period,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PriceBook":
        return cls(**data)


@dataclass(frozen=True)
class Provider:
    """One cloud provider: a named estate plus its tariff."""

    name: str
    infrastructure: Infrastructure
    price_book: PriceBook = field(default_factory=PriceBook)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("a provider needs a non-empty name")


@dataclass(frozen=True)
class MarketInstance:
    """One market compilation: the provider-tagged estate at a time.

    Attributes
    ----------
    infrastructure:
        The merged estate with per-provider prices folded into its cost
        vectors and every server tagged with its provider id.
    time:
        The logical time the dynamic curves were evaluated at.
    prices:
        The (operating, usage) multiplier pair per provider in force.
    """

    infrastructure: Infrastructure
    time: float
    prices: tuple[tuple[float, float], ...]

    @property
    def p(self) -> int:
        return self.infrastructure.p

    def provider_slices(self) -> tuple[IntArray, ...]:
        """Per-provider server index arrays, in provider order."""
        return tuple(
            self.infrastructure.servers_in_provider(k) for k in range(self.p)
        )


class ProviderMarket:
    """N providers with distinct price books, compiled on demand.

    Parameters
    ----------
    providers:
        The participating providers.  All estates must share one
        attribute schema (the h columns must mean the same thing for
        cross-provider objective vectors to be comparable).
    """

    def __init__(self, providers: "list[Provider] | tuple[Provider, ...]") -> None:
        providers = tuple(providers)
        if not providers:
            raise ValidationError("a market needs at least one provider")
        names = [p.name for p in providers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate provider names in {names}")
        h = providers[0].infrastructure.h
        schema = providers[0].infrastructure.schema
        for provider in providers[1:]:
            if provider.infrastructure.h != h or (
                provider.infrastructure.schema.names != schema.names
            ):
                raise ValidationError(
                    "all provider estates must share one attribute schema"
                )
        self.providers = providers

    def __len__(self) -> int:
        return len(self.providers)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.providers)

    # ------------------------------------------------------------------
    def compile(self, at: float = 0.0) -> MarketInstance:
        """Merge the provider estates into one instance priced at ``at``.

        Server order is provider-major (provider 0's servers first),
        datacenter ids are offset per provider so they stay contiguous,
        and each provider's E/U vectors are scaled by its price book's
        multipliers at ``at``.  A one-provider market with a neutral
        book reproduces its input infrastructure's matrices exactly
        (same objects are not reused, but every array is equal byte for
        byte) — the single-provider identity the market checker proves.
        """
        caps: list[FloatArray] = []
        facs: list[FloatArray] = []
        ops: list[FloatArray] = []
        uses: list[FloatArray] = []
        loads: list[FloatArray] = []
        qoses: list[FloatArray] = []
        dcs: list[IntArray] = []
        tags: list[IntArray] = []
        dc_names: list[str] = []
        srv_names: list[str] = []
        prices: list[tuple[float, float]] = []
        dc_offset = 0
        for k, provider in enumerate(self.providers):
            infra = provider.infrastructure
            op_mult, use_mult = provider.price_book.price_at(at)
            if op_mult <= 0 or use_mult <= 0:
                raise ValidationError(
                    f"provider {provider.name!r} prices collapsed to <= 0 "
                    f"at t={at} (operating {op_mult}, usage {use_mult})"
                )
            prices.append((op_mult, use_mult))
            caps.append(infra.capacity)
            facs.append(infra.capacity_factor)
            ops.append(infra.operating_cost * op_mult)
            uses.append(infra.usage_cost * use_mult)
            loads.append(infra.max_load)
            qoses.append(infra.max_qos)
            dcs.append(infra.server_datacenter + dc_offset)
            tags.append(np.full(infra.m, k, dtype=np.int64))
            dc_names.extend(
                infra.datacenter_names
                or tuple(f"{provider.name}/dc{i}" for i in range(infra.g))
            )
            srv_names.extend(
                infra.server_names
                or tuple(f"{provider.name}/srv{j}" for j in range(infra.m))
            )
            dc_offset += infra.g
        single = len(self.providers) == 1
        infrastructure = Infrastructure(
            capacity=np.vstack(caps),
            capacity_factor=np.vstack(facs),
            operating_cost=np.concatenate(ops),
            usage_cost=np.concatenate(uses),
            max_load=np.vstack(loads),
            max_qos=np.vstack(qoses),
            server_datacenter=np.concatenate(dcs),
            schema=self.providers[0].infrastructure.schema,
            datacenter_names=(
                self.providers[0].infrastructure.datacenter_names
                if single
                else tuple(dc_names)
            ),
            server_names=(
                self.providers[0].infrastructure.server_names
                if single
                else tuple(srv_names)
            ),
            # A degenerate one-provider market stays untagged so its
            # compiled fingerprint (and every cache keyed on it) is
            # byte-identical to the plain single-estate path.
            server_provider=None if single else np.concatenate(tags),
            provider_names=() if single else self.names,
        )
        return MarketInstance(
            infrastructure=infrastructure, time=at, prices=tuple(prices)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_infrastructure(
        cls,
        infrastructure: Infrastructure,
        n_providers: int,
        price_books: "list[PriceBook] | tuple[PriceBook, ...] | None" = None,
        names: "tuple[str, ...] | None" = None,
    ) -> "ProviderMarket":
        """Partition one estate into an N-provider market.

        Datacenters are dealt round-robin to providers (datacenter i →
        provider ``i % n``), which preserves server order *within* each
        provider and keeps each provider's datacenter ids contiguous.
        When the estate has fewer datacenters than providers, *servers*
        are dealt round-robin instead (server j → provider ``j % n``).
        With ``n_providers=1`` and no price books this is the identity
        market: compiling it reproduces ``infrastructure`` exactly.

        Default price books (when none are given) differentiate the
        providers deterministically — provider k gets static rates
        ``1 + 0.1*k`` on usage and ``1 - 0.05*k`` (floored at 0.5) on
        operating cost with a phase-shifted diurnal curve — so a bare
        ``--providers N`` run exercises real price asymmetry without
        extra configuration.
        """
        n = int(n_providers)
        if n < 1:
            raise ValidationError(f"need at least one provider, got {n}")
        if n > infrastructure.m:
            raise ValidationError(
                f"cannot split {infrastructure.m} server(s) across "
                f"{n} providers"
            )
        if price_books is not None and len(price_books) != n:
            raise ValidationError(
                f"{len(price_books)} price books for {n} providers"
            )
        if names is not None and len(names) != n:
            raise ValidationError(f"{len(names)} names for {n} providers")
        if price_books is None:
            if n == 1:
                price_books = [PriceBook()]
            else:
                price_books = [
                    PriceBook(
                        operating_rate=max(0.5, 1.0 - 0.05 * k),
                        usage_rate=1.0 + 0.1 * k,
                        curve="diurnal",
                        amplitude=0.15,
                        period=24.0,
                        phase=8.0 * k,
                    )
                    for k in range(n)
                ]
        names = names or tuple(f"provider{k}" for k in range(n))

        if n == 1:
            # Identity market: hand the estate over verbatim (no row
            # reshuffle), so compile() reproduces it byte for byte even
            # when its server order interleaves datacenters.
            return cls(
                [
                    Provider(
                        name=names[0],
                        infrastructure=infrastructure,
                        price_book=price_books[0],
                    )
                ]
            )

        by_datacenter = infrastructure.g >= n
        providers: list[Provider] = []
        for k in range(n):
            if by_datacenter:
                datacenters = [
                    i for i in range(infrastructure.g) if i % n == k
                ]
                rows = np.concatenate(
                    [
                        infrastructure.servers_in_datacenter(i)
                        for i in datacenters
                    ]
                )
            else:
                rows = np.arange(infrastructure.m, dtype=np.int64)[k::n]
                datacenters = sorted(
                    {int(dc) for dc in infrastructure.server_datacenter[rows]}
                )
            dc_remap = {dc: new for new, dc in enumerate(datacenters)}
            sub = Infrastructure(
                capacity=infrastructure.capacity[rows],
                capacity_factor=infrastructure.capacity_factor[rows],
                operating_cost=infrastructure.operating_cost[rows],
                usage_cost=infrastructure.usage_cost[rows],
                max_load=infrastructure.max_load[rows],
                max_qos=infrastructure.max_qos[rows],
                server_datacenter=np.asarray(
                    [
                        dc_remap[int(dc)]
                        for dc in infrastructure.server_datacenter[rows]
                    ],
                    dtype=np.int64,
                ),
                schema=infrastructure.schema,
                datacenter_names=tuple(
                    infrastructure.datacenter_names[i] for i in datacenters
                )
                if infrastructure.datacenter_names
                else (),
                server_names=tuple(
                    infrastructure.server_names[j] for j in rows
                )
                if infrastructure.server_names
                else (),
            )
            providers.append(
                Provider(
                    name=names[k],
                    infrastructure=sub,
                    price_book=price_books[k],
                )
            )
        return cls(providers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProviderMarket(p={len(self)}, names={self.names})"
