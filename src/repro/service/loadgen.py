"""Open-loop load generator for the allocation service.

Replays a seeded :class:`~repro.workloads.traces.TraceGenerator`
stream against a running service over real HTTP: arrivals become
``POST /requests``, departures become ``DELETE /requests/{key}``, and
event times are compressed onto a wall-clock schedule (``rate``
requests/second).  The generator is **open-loop** — every request
fires at its scheduled instant whether or not earlier ones have been
answered — and latency is measured from the *scheduled* fire time, so
a slow service shows up as rising latency instead of being hidden by
coordinated omission.

The report (:class:`LoadReport`) carries what the bench and the CI
smoke job assert on: status-code histogram, p50/p90/p99 latency,
achieved throughput, rejection rate and the zero-5xx flag.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.serialization import request_to_dict
from repro.workloads.generator import ScenarioSpec
from repro.workloads.traces import TraceGenerator, TraceSpec

__all__ = ["LoadReport", "LoadGenerator", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class LoadReport:
    """What one load-generation run observed."""

    requests: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    accepted: int = 0
    rejected: int = 0
    throttled: int = 0
    errors: int = 0
    latencies: list[float] = field(default_factory=list)
    elapsed: float = 0.0

    def record(self, status: int, latency: float) -> None:
        """Fold one response into the tallies."""
        self.requests += 1
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies.append(latency)
        if status == 200:
            self.accepted += 1
        elif status == 409:
            self.rejected += 1
        elif status == 429:
            self.throttled += 1
        elif status >= 500:
            self.errors += 1

    @property
    def ok(self) -> bool:
        """Zero 5xx responses — the smoke-test bar."""
        return self.errors == 0

    @property
    def rejection_rate(self) -> float:
        """Fraction of answered requests rejected by admission."""
        return self.rejected / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Achieved requests/second over the whole run."""
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON form for ``BENCH_service.json``."""
        return {
            "requests": self.requests,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "accepted": self.accepted,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "errors_5xx": self.errors,
            "rejection_rate": self.rejection_rate,
            "throughput_rps": self.throughput,
            "latency_p50": percentile(self.latencies, 50),
            "latency_p90": percentile(self.latencies, 90),
            "latency_p99": percentile(self.latencies, 99),
            "elapsed": self.elapsed,
        }


class _Client:
    """Minimal keep-alive HTTP/1.1 client pool (stdlib only)."""

    def __init__(self, host: str, port: int, size: int = 8) -> None:
        self.host = host
        self.port = port
        self.size = size
        self._pool: asyncio.Queue = asyncio.Queue()
        self._created = 0

    async def _connection(self):
        if self._pool.empty() and self._created < self.size:
            self._created += 1
            return await asyncio.open_connection(self.host, self.port)
        return await self._pool.get()

    async def request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One request/response round trip; reconnects once on EOF."""
        payload = (json.dumps(body).encode() if body is not None else b"")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        ).encode("latin-1")
        for attempt in (0, 1):
            reader, writer = await self._connection()
            try:
                writer.write(head + payload)
                await writer.drain()
                status_line = await reader.readline()
                if not status_line:
                    raise ConnectionResetError("server closed connection")
                status = int(status_line.split()[1])
                length = 0
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                data = await reader.readexactly(length) if length else b"{}"
                await self._pool.put((reader, writer))
                return status, json.loads(data.decode() or "{}")
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                writer.close()
                self._created -= 1
                if attempt:
                    raise
        raise ConnectionResetError  # pragma: no cover - unreachable

    async def close(self) -> None:
        """Close every pooled connection."""
        while not self._pool.empty():
            _, writer = self._pool.get_nowait()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class LoadGenerator:
    """Seeded open-loop trace replay against a live service.

    Parameters
    ----------
    host, port:
        Where the service listens.
    trace_spec, scenario_spec:
        The workload family (same specs the batch simulations use), so
        a load test is "the same workload the scheduler was benched
        on, but over the wire".
    rate:
        Wall-clock requests/second the replay aims for: trace event
        times are scaled so the mean arrival spacing is ``1 / rate``.
    seed:
        Trace seed — two runs with one seed replay identical streams.
    """

    def __init__(
        self,
        host: str,
        port: int,
        trace_spec: TraceSpec | None = None,
        scenario_spec: ScenarioSpec | None = None,
        rate: float = 50.0,
        seed: int = 0,
        connections: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.trace_spec = trace_spec or TraceSpec(
            horizon=20.0, arrival_rate=10.0, mean_lifetime=8.0
        )
        self.scenario_spec = scenario_spec or ScenarioSpec(
            servers=16, datacenters=2, vms=64, max_request_size=4
        )
        self.rate = float(rate)
        self.seed = int(seed)
        self.connections = int(connections)

    async def run(self, max_events: int | None = None) -> LoadReport:
        """Replay the trace; returns the observed :class:`LoadReport`."""
        generator = TraceGenerator(
            self.trace_spec, self.scenario_spec, seed=self.seed
        )
        trace, _ = generator.generate(key_prefix=f"load-{self.seed}")
        events: list[tuple[float, str, str, dict[str, Any] | None]] = []
        for event in trace.arrivals:
            events.append(
                (
                    event.time,
                    "POST",
                    "/requests",
                    {"key": event.key, "request": request_to_dict(event.request)},
                )
            )
        for event in trace.departures:
            events.append((event.time, "DELETE", f"/requests/{event.key}", None))
        events.sort(key=lambda item: item[0])
        if max_events is not None:
            events = events[:max_events]
        if not events:
            return LoadReport()

        # Compress trace time onto the wall clock: `arrival_rate`
        # events per trace-time-unit should fire at `rate` per second.
        scale = self.trace_spec.arrival_rate / self.rate
        client = _Client(self.host, self.port, size=self.connections)
        report = LoadReport()
        started = time.perf_counter()
        lock = asyncio.Lock()

        async def fire(
            at: float, method: str, path: str, body: dict[str, Any] | None
        ) -> None:
            """Fire one event at its scheduled offset and record it."""
            delay = at - (time.perf_counter() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            scheduled = started + at
            try:
                status, _ = await client.request(method, path, body)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                status = 599
            latency = time.perf_counter() - scheduled
            async with lock:
                report.record(status, latency)

        base = events[0][0]
        tasks = [
            asyncio.create_task(
                fire((at - base) * scale, method, path, body)
            )
            for at, method, path, body in events
        ]
        await asyncio.gather(*tasks)
        report.elapsed = time.perf_counter() - started
        await client.close()
        return report
