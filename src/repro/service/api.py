"""Hand-rolled HTTP/1.1 front door of the allocation service.

Stdlib-only by design: a tiny request parser on
:func:`asyncio.start_server` (request line + headers + Content-Length
body, keep-alive), JSON in and out, no framework.  Endpoints:

========================== =============================================
``POST /requests``          submit a bundle → 200 accepted / 409
                            rejected (structured reason) / 429 throttled
``DELETE /requests/{key}``  tenant departure → 200 / 404 / 409
``POST /servers/{id}/drain``    evacuate a server (forced failure)
``POST /servers/{id}/recover``  return a server to service
``POST /reoptimize``        run one synchronous background cycle
``GET /placements``         residents, failed servers, epoch
``GET /metrics``            telemetry registry + reoptimizer cycles
``GET /healthz``            liveness + queue depth
========================== =============================================

Overload shows up as 429 twice over: a token bucket throttles the raw
request rate, and the admission controller's bounded queue rejects
what the worker cannot keep up with.  Handler failures map to 500 —
the CI smoke test asserts that counter stays at zero.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

from repro.errors import ReproError
from repro.serialization import request_from_dict
from repro.service.admission import AdmissionController
from repro.service.reoptimizer import Reoptimizer
from repro.service.state import ServiceState
from repro.telemetry import get_registry

__all__ = ["TokenBucket", "ApiServer"]

_MAX_BODY = 1 << 20  #: 1 MiB request-body cap.

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, burst of ``burst``.

    ``rate <= 0`` disables throttling (every :meth:`allow` passes).
    """

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._last = time.monotonic()

    def allow(self) -> bool:
        """Consume one token if available."""
        if self.rate <= 0:
            return True
        now = time.monotonic()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class ApiServer:
    """The asyncio HTTP server wiring state, admission and reoptimizer."""

    def __init__(
        self,
        state: ServiceState,
        controller: AdmissionController,
        reoptimizer: Reoptimizer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: float = 0.0,
        burst: int = 64,
    ) -> None:
        self.state = state
        self.controller = controller
        self.reoptimizer = reoptimizer
        self.host = host
        self.port = port
        self.bucket = TokenBucket(rate, burst)
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and start serving; returns the actual port (for port 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload = await self._dispatch(method, path, body)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, bool] | None:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = version == "HTTP/1.1" and connection != "close"
        return method, path, body, keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        get_registry().count("service.http.responses", status=status)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        get_registry().count("service.http.requests", method=method)
        try:
            return await self._route(method, path, body)
        except Exception as exc:  # noqa: BLE001 - the 500 of last resort
            get_registry().count("service.http.errors")
            return 500, {"error": "internal", "message": str(exc)}

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "epoch": self.state.epoch,
                "tenants": self.state.tenant_count(),
                "queue_depth": self.controller.queue_depth,
            }
        if method == "GET" and path == "/metrics":
            snapshot = get_registry().snapshot()
            metrics = {
                "counters": dict(snapshot.counters),
                "gauges": dict(snapshot.gauges),
                "histograms": {
                    name: {
                        "count": summary.count,
                        "total": summary.total,
                        "mean": summary.mean,
                        "min": summary.minimum if summary.count else 0.0,
                        "max": summary.maximum if summary.count else 0.0,
                    }
                    for name, summary in snapshot.histograms.items()
                },
            }
            cycles = (
                [c.to_dict() for c in self.reoptimizer.cycles]
                if self.reoptimizer is not None
                else []
            )
            return 200, {"metrics": metrics, "reoptimize_cycles": cycles}
        if method == "GET" and path == "/placements":
            return 200, {
                "epoch": self.state.epoch,
                "residents": self.state.residents(),
                "failed_servers": sorted(
                    self.state.scheduler.failed_servers
                ),
                "window_index": self.state.scheduler.window_index,
            }
        if method == "POST" and path == "/requests":
            return await self._post_request(body)
        if method == "DELETE" and path.startswith("/requests/"):
            return await self._delete_request(path[len("/requests/") :])
        if method == "POST" and path.startswith("/servers/"):
            return await self._post_server(path[len("/servers/") :])
        if method == "POST" and path == "/reoptimize":
            if self.reoptimizer is None:
                return 404, {"error": "reoptimizer disabled"}
            cycle = await self.reoptimizer.run_cycle()
            if cycle is None:
                return 200, {"ran": False, "reason": "empty"}
            return 200, {"ran": True, "cycle": cycle.to_dict()}
        return 404, {"error": "no such route", "path": path}

    async def _post_request(self, body: bytes) -> tuple[int, dict[str, Any]]:
        if not self.bucket.allow():
            get_registry().count("service.throttled")
            return 429, {"error": "throttled"}
        try:
            payload = json.loads(body.decode() or "{}")
            key = payload["key"]
            request = request_from_dict(payload["request"])
        except (ValueError, KeyError, TypeError, ReproError) as exc:
            return 400, {"error": "bad request", "message": str(exc)}
        if not isinstance(key, str) or not key:
            return 400, {"error": "bad request", "message": "key must be a string"}
        decision = await self.controller.submit_request(key, request)
        if decision is None:
            return 429, {"error": "queue full"}
        return (200 if decision.accepted else 409), decision.to_dict()

    async def _delete_request(self, key: str) -> tuple[int, dict[str, Any]]:
        if not key:
            return 400, {"error": "bad request", "message": "missing key"}
        decision = await self.controller.depart(key)
        if decision is None:
            return 429, {"error": "queue full"}
        if decision.reason == "unknown_key":
            return 404, decision.to_dict()
        return (200 if decision.accepted else 409), decision.to_dict()

    async def _post_server(self, tail: str) -> tuple[int, dict[str, Any]]:
        server_str, _, verb = tail.partition("/")
        try:
            server = int(server_str)
        except ValueError:
            return 400, {"error": "bad request", "message": "server id not an int"}
        if not 0 <= server < self.state.infrastructure.m:
            return 404, {"error": "no such server", "server": server}
        if verb == "drain":
            decision = await self.controller.drain(server)
        elif verb == "recover":
            decision = await self.controller.recover(server)
        else:
            return 404, {"error": "no such route"}
        if decision is None:
            return 429, {"error": "queue full"}
        return (200 if decision.accepted else 409), decision.to_dict()
