"""Live admission control: milliseconds-scale accept/reject decisions.

Placement requests stream in over HTTP; each must be answered fast,
against the *current* platform state, without waiting for the
background optimizer.  :class:`AdmissionController` implements the
paper's time-window batching at micro scale:

* API handlers enqueue work items into one **bounded** queue (overflow
  is the API layer's 429);
* a single worker task drains whatever is queued — one item under
  light load, a real batch under pressure — and closes the batch as
  one scheduler window via :meth:`ServiceState.admit`;
* each caller gets back a structured :class:`AdmissionDecision`
  (accepted/rejected + machine-readable reason + placement), and the
  admission latency histogram records the full enqueue-to-decision
  wall time.

Because the worker is one asyncio task and every mutation happens
inside it, the service state keeps its single-writer guarantee without
locks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.model.request import Request
from repro.service.state import ServiceState
from repro.tabu.neighborhood import NeighborFinder
from repro.telemetry import get_registry

__all__ = ["AdmissionDecision", "AdmissionController", "diagnose_rejection"]

#: Structured rejection reasons the controller can emit.
REASONS = (
    "capacity",
    "affinity",
    "displaced",
    "duplicate_key",
    "unknown_key",
    "not_hosted",
    "error",
)


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer to one mutation request."""

    key: str
    action: str  #: "arrival" | "departure" | "drain" | "recover"
    accepted: bool
    reason: str | None = None
    window_index: int | None = None
    placement: tuple[int, ...] | None = None
    latency: float = 0.0
    #: Side effects of drain/recover batches (keys displaced, rehomed...)
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON body the API layer returns."""
        body: dict[str, Any] = {
            "key": self.key,
            "action": self.action,
            "accepted": self.accepted,
            "latency_seconds": self.latency,
        }
        if self.reason is not None:
            body["reason"] = self.reason
        if self.window_index is not None:
            body["window"] = self.window_index
        if self.placement is not None:
            body["placement"] = list(self.placement)
        if self.detail:
            body.update(self.detail)
        return body


def diagnose_rejection(state: ServiceState, request: Request) -> str:
    """Best-effort structured reason for a greedy rejection.

    Re-walks the request's resources (greedy order) against the
    current committed usage: if some resource has no server passing
    the capacity mask the reason is ``capacity``; if capacity passes
    but the affinity mask empties the candidate set it is
    ``affinity``.  Heuristic by construction — the greedy path is
    order-dependent — but cheap and right in the common cases.
    """
    scheduler = state.scheduler
    infra = scheduler.infrastructure
    finder = NeighborFinder(infra, request)
    usage = scheduler.state.snapshot_usage()
    if scheduler.failed_servers:
        failed = sorted(scheduler.failed_servers)
        effective = infra.effective_capacity
        usage[failed] = np.maximum(usage[failed], effective[failed])
    assignment = np.full(request.n, -1, dtype=np.int64)
    for k in range(request.n):
        capacity_ok = finder.capacity_mask(usage, assignment, k)
        if not capacity_ok.any():
            return "capacity"
        valid = capacity_ok & finder.affinity_mask(assignment, k)
        if not valid.any():
            return "affinity"
        server = int(np.flatnonzero(valid)[0])
        assignment[k] = server
        usage[server] += request.demand[k]
    # The full request walks through greedily now — the window
    # allocator rejected it in competition with the rest of its batch.
    return "capacity"


@dataclass
class _WorkItem:
    """One queued mutation awaiting the admission worker."""

    action: str  #: "arrival" | "departure" | "drain" | "recover"
    key: str
    request: Request | None
    server: int | None
    future: asyncio.Future
    enqueued_at: float


class AdmissionController:
    """Bounded-queue micro-batching front of :class:`ServiceState`."""

    def __init__(self, state: ServiceState, max_queue: int = 256) -> None:
        self.state = state
        self.max_queue = int(max_queue)
        self._queue: asyncio.Queue[_WorkItem] = asyncio.Queue(maxsize=max_queue)
        self._task: asyncio.Task | None = None
        #: Called after every processed batch (the app hooks its
        #: checkpoint cadence here).
        self.on_batch = None

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Items currently waiting for the worker."""
        return self._queue.qsize()

    def start(self) -> None:
        """Spawn the single worker task (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="admission-worker"
            )

    async def stop(self) -> None:
        """Drain whatever is queued, then cancel the worker."""
        while not self._queue.empty():
            await asyncio.sleep(0)
        task = self._task
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------
    # Enqueue API (called by the HTTP layer)
    # ------------------------------------------------------------------
    def _enqueue(
        self, action: str, key: str, request: Request | None, server: int | None
    ) -> asyncio.Future | None:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        item = _WorkItem(
            action=action,
            key=key,
            request=request,
            server=server,
            future=future,
            enqueued_at=time.perf_counter(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            get_registry().count("service.admission.queue_full")
            return None
        get_registry().gauge("service.queue.depth", self._queue.qsize())
        return future

    async def submit_request(
        self, key: str, request: Request
    ) -> AdmissionDecision | None:
        """Queue an arrival; ``None`` means the queue is full (429)."""
        future = self._enqueue("arrival", key, request, None)
        return None if future is None else await future

    async def depart(self, key: str) -> AdmissionDecision | None:
        """Queue a tenant departure; ``None`` means queue full (429)."""
        future = self._enqueue("departure", key, None, None)
        return None if future is None else await future

    async def drain(self, server: int) -> AdmissionDecision | None:
        """Queue a server drain (forced evacuation + re-placement)."""
        future = self._enqueue("drain", f"server-{server}", None, server)
        return None if future is None else await future

    async def recover(self, server: int) -> AdmissionDecision | None:
        """Queue a server returning to service."""
        future = self._enqueue("recover", f"server-{server}", None, server)
        return None if future is None else await future

    # ------------------------------------------------------------------
    # The worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            batch = [item]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            get_registry().gauge("service.queue.depth", self._queue.qsize())
            try:
                self._process(batch)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                self._fail_batch(batch, exc)
            hook = self.on_batch
            if hook is not None:
                hook()

    def _fail_batch(self, batch: list[_WorkItem], exc: Exception) -> None:
        get_registry().count("service.admission.errors")
        for item in batch:
            if not item.future.done():
                item.future.set_result(
                    AdmissionDecision(
                        key=item.key,
                        action=item.action,
                        accepted=False,
                        reason="error",
                        detail={"message": str(exc)},
                    )
                )

    def _resolve(
        self, item: _WorkItem, decision: AdmissionDecision
    ) -> None:
        latency = time.perf_counter() - item.enqueued_at
        decision = AdmissionDecision(
            key=decision.key,
            action=decision.action,
            accepted=decision.accepted,
            reason=decision.reason,
            window_index=decision.window_index,
            placement=decision.placement,
            latency=latency,
            detail=decision.detail,
        )
        registry = get_registry()
        registry.observe(
            "service.admission.latency_seconds", latency, action=item.action
        )
        if not item.future.done():
            item.future.set_result(decision)

    def _process(self, batch: list[_WorkItem]) -> None:
        """Validate, close one window, and resolve every future."""
        state = self.state
        registry = get_registry()
        arrivals: list[_WorkItem] = []
        departures: list[_WorkItem] = []
        failures: list[_WorkItem] = []
        recoveries: list[_WorkItem] = []
        seen_keys: set[str] = set()
        for item in batch:
            if item.action == "arrival":
                if state.knows_key(item.key) or item.key in seen_keys:
                    registry.count("service.admission.rejected", reason="duplicate_key")
                    self._resolve(
                        item,
                        AdmissionDecision(
                            key=item.key,
                            action="arrival",
                            accepted=False,
                            reason="duplicate_key",
                        ),
                    )
                    continue
                seen_keys.add(item.key)
                arrivals.append(item)
            elif item.action == "departure":
                if not state.knows_key(item.key):
                    self._resolve(
                        item,
                        AdmissionDecision(
                            key=item.key,
                            action="departure",
                            accepted=False,
                            reason="unknown_key",
                        ),
                    )
                    continue
                if not state.is_hosted(item.key):
                    self._resolve(
                        item,
                        AdmissionDecision(
                            key=item.key,
                            action="departure",
                            accepted=False,
                            reason="not_hosted",
                        ),
                    )
                    continue
                departures.append(item)
            elif item.action == "drain":
                failures.append(item)
            else:  # recover
                recoveries.append(item)

        if not (arrivals or departures or failures or recoveries):
            return

        report = state.admit(
            arrivals=[(item.key, item.request) for item in arrivals],
            departures=[item.key for item in departures],
            failures=[item.server for item in failures],
            recoveries=[item.server for item in recoveries],
        )
        accepted = set(report.accepted)
        displaced = set(report.displaced)
        displaced_rejected = [
            key for key in report.rejected if key in displaced
        ]
        for item in arrivals:
            if item.key in accepted:
                registry.count("service.admission.accepted")
                placement = tuple(
                    int(g)
                    for g in state.scheduler.state.previous_assignment(item.key)
                )
                self._resolve(
                    item,
                    AdmissionDecision(
                        key=item.key,
                        action="arrival",
                        accepted=True,
                        window_index=report.window_index,
                        placement=placement,
                    ),
                )
            else:
                reason = diagnose_rejection(state, item.request)
                registry.count("service.admission.rejected", reason=reason)
                self._resolve(
                    item,
                    AdmissionDecision(
                        key=item.key,
                        action="arrival",
                        accepted=False,
                        reason=reason,
                        window_index=report.window_index,
                    ),
                )
        for item in departures:
            self._resolve(
                item,
                AdmissionDecision(
                    key=item.key,
                    action="departure",
                    accepted=True,
                    window_index=report.window_index,
                ),
            )
        for item in failures:
            self._resolve(
                item,
                AdmissionDecision(
                    key=item.key,
                    action="drain",
                    accepted=True,
                    window_index=report.window_index,
                    detail={
                        "displaced": sorted(displaced),
                        "rehomed": sorted(displaced & accepted),
                        "lost": sorted(displaced_rejected),
                    },
                ),
            )
        for item in recoveries:
            self._resolve(
                item,
                AdmissionDecision(
                    key=item.key,
                    action="recover",
                    accepted=True,
                    window_index=report.window_index,
                ),
            )
