"""Background reoptimization: the paper's reconfiguration cycle, live.

While admission answers in milliseconds with greedy incumbent
placements, this loop periodically re-optimizes the whole resident set
with a deadline-bounded anytime portfolio (NSGA-III + tabu racing the
exact CP solve and a standalone tabu walk by default, optionally over
the PR 4 parallel engine) and migrates the platform toward a better
front — without ever blocking admission:

1. **snapshot** — :meth:`ServiceState.snapshot` hands over a deep
   JSON-able copy of the scheduler state plus the current epoch;
2. **shadow solve** — a worker thread rebuilds a private shadow
   scheduler from the copy and runs
   :meth:`~repro.scheduler.window.TimeWindowScheduler.reoptimize`
   with the configured portfolio; the live event loop keeps
   admitting the whole time;
3. **publish** — back on the loop, the resulting migration plan is
   applied only if (a) the shadow allocation is feasible, (b) it does
   not shrink the dominated hypervolume of the live allocation's
   objective point, and (c) the epoch is unchanged (no admissions,
   departures or drains raced the solve).  Anything else is discarded
   with a structured reason — stale plans are cheap, wrong migrations
   are not.

Cycle outcomes land in ``service.reoptimize.*`` telemetry and in the
:class:`ReoptimizeCycle` records the API exposes under ``/metrics``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ea.config import NSGAConfig
from repro.ea.hypervolume import hypervolume, reference_point
from repro.model.infrastructure import Infrastructure
from repro.model.request import Request
from repro.portfolio.racer import PortfolioAllocator
from repro.scheduler.window import TimeWindowScheduler
from repro.service.state import ServiceState
from repro.telemetry import get_registry, span

__all__ = [
    "DEFAULT_MEMBERS",
    "ReoptimizeCycle",
    "Reoptimizer",
    "shadow_reoptimize",
]

#: Default portfolio raced by the background reoptimizer.
DEFAULT_MEMBERS = "nsga3_tabu+cp+tabu"


@dataclass(frozen=True)
class ReoptimizeCycle:
    """What one background reoptimization cycle did."""

    index: int
    epoch: int
    tenants: int
    applied: bool
    reason: str  #: "applied" | "stale" | "infeasible" | "non_improving" | "empty"
    hv_before: float = 0.0
    hv_after: float = 0.0
    moves: int = 0
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON form for ``/metrics`` and the bench report."""
        return {
            "index": self.index,
            "epoch": self.epoch,
            "tenants": self.tenants,
            "applied": self.applied,
            "reason": self.reason,
            "hv_before": self.hv_before,
            "hv_after": self.hv_after,
            "moves": self.moves,
            "elapsed": self.elapsed,
        }


def shadow_reoptimize(
    infrastructure: Infrastructure,
    payload: dict[str, Any],
    config: NSGAConfig,
    members: str = DEFAULT_MEMBERS,
    deadline_ms: float | None = None,
) -> dict[str, Any]:
    """Run one reoptimization pass on a *private* shadow scheduler.

    Executed on a worker thread.  The solve races a deadline-bounded
    :class:`~repro.portfolio.racer.PortfolioAllocator` (instead of a
    fixed NSGA-III + tabu budget), so a tight ``deadline_ms`` ships the
    best pooled incumbent found so far rather than blocking the cycle.
    Returns the candidate plan plus the hypervolume of the incumbent
    allocation's objective point (``hv_before``) and the candidate's
    (``hv_after``) under a shared reference point, so the caller can
    enforce improve-or-preserve.
    """
    allocator = PortfolioAllocator(
        config=config, members=members, deadline_ms=deadline_ms
    )
    shadow = TimeWindowScheduler(
        infrastructure=infrastructure,
        allocator=allocator,
        window_length=float(payload["window_length"]),
    )
    try:
        shadow.load_state_dict(payload)
        tenants = shadow.state.tenants()
        if not tenants:
            return {"feasible": False, "reason": "empty", "tenants": 0}

        # Incumbent objective point: the current allocation scored with
        # itself as X^t, so its migration term is zero by construction.
        requests = [shadow.request_for(key) for key in tenants]
        merged, _ = Request.concatenate(requests)
        previous = np.concatenate(
            [shadow.state.previous_assignment(key) for key in tenants]
        )
        compiled = allocator.compile_problem(infrastructure, merged)
        evaluator = compiled.evaluator(previous_assignment=previous)
        before = evaluator.evaluate(previous).as_array()

        result = shadow.reoptimize()
        outcome, plan = result
        after = np.asarray(outcome.objectives, dtype=np.float64)
        feasible = bool(outcome.accepted.all()) and outcome.violations == 0

        # Dominated-hypervolume comparison of the two single points
        # under a shared reference: hv(point) = prod(ref - point), so
        # hv_after >= hv_before iff the candidate is at least as good
        # volume-wise once its migration cost is priced in.
        reference = reference_point(np.stack([before, after]), margin=1.0)
        hv_before = hypervolume(before[np.newaxis, :], reference)
        hv_after = hypervolume(after[np.newaxis, :], reference)

        assignments = None
        if feasible:
            assignments = {}
            offset = 0
            for key, request in zip(tenants, requests):
                block = outcome.assignment[offset : offset + request.n]
                offset += request.n
                assignments[key] = [int(g) for g in block]
        return {
            "feasible": feasible,
            "tenants": len(tenants),
            "assignments": assignments,
            "hv_before": float(hv_before),
            "hv_after": float(hv_after),
            "moves": int(plan.size),
            "evaluations": int(outcome.evaluations),
            "algorithm": outcome.algorithm,
        }
    finally:
        # The shadow scheduler owns the portfolio (and its member
        # allocators' shared worker pool): closing it here is what
        # keeps a crashing cycle from leaking the pool.
        shadow.close()


class Reoptimizer:
    """Periodic (or on-demand) background reoptimization loop."""

    def __init__(
        self,
        state: ServiceState,
        config: NSGAConfig | None = None,
        every: float = 30.0,
        executor: ThreadPoolExecutor | None = None,
        members: str = DEFAULT_MEMBERS,
        deadline_ms: float | None = None,
    ) -> None:
        self.state = state
        self.config = config or NSGAConfig(
            population_size=20, max_evaluations=600, seed=state.seed
        )
        self.every = float(every)
        self.members = members
        self.deadline_ms = deadline_ms
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="reoptimizer"
        )
        self._owns_executor = executor is None
        self._wake = asyncio.Event()
        self._stopping = False
        self._lock = asyncio.Lock()
        self.cycles: list[ReoptimizeCycle] = []

    # ------------------------------------------------------------------
    def trigger(self) -> None:
        """Request a cycle now instead of waiting out the interval."""
        self._wake.set()

    async def run(self) -> None:
        """The background task: cycle every ``every`` seconds."""
        while not self._stopping:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=self.every)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if self._stopping:
                break
            try:
                await self.run_cycle()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - loop must survive a bad cycle
                get_registry().count("service.reoptimize.errors")

    async def stop(self) -> None:
        """Stop the loop and release the worker thread."""
        self._stopping = True
        self._wake.set()
        if self._owns_executor:
            self._executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    async def run_cycle(self) -> ReoptimizeCycle | None:
        """One snapshot → shadow solve → publish pass.

        Returns ``None`` when the platform is empty (nothing to do).
        Concurrent calls serialize on an internal lock, so an API
        ``POST /reoptimize`` cannot overlap the periodic loop.
        """
        async with self._lock:
            registry = get_registry()
            if self.state.tenant_count() == 0:
                return None
            started = time.perf_counter()
            payload, epoch = self.state.snapshot()
            registry.count("service.reoptimize.cycles")
            with span("service.reoptimize.cycle", epoch=epoch):
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self._executor,
                    shadow_reoptimize,
                    self.state.infrastructure,
                    payload,
                    self.config,
                    self.members,
                    self.deadline_ms,
                )
            elapsed = time.perf_counter() - started
            registry.observe("service.reoptimize.seconds", elapsed)

            if not result["feasible"]:
                reason = result.get("reason", "infeasible")
                registry.count("service.reoptimize.discarded", reason=reason)
                cycle = ReoptimizeCycle(
                    index=len(self.cycles),
                    epoch=epoch,
                    tenants=result["tenants"],
                    applied=False,
                    reason=reason,
                    hv_before=result.get("hv_before", 0.0),
                    hv_after=result.get("hv_after", 0.0),
                    moves=result.get("moves", 0),
                    elapsed=elapsed,
                )
            elif result["hv_after"] < result["hv_before"]:
                registry.count(
                    "service.reoptimize.discarded", reason="non_improving"
                )
                cycle = ReoptimizeCycle(
                    index=len(self.cycles),
                    epoch=epoch,
                    tenants=result["tenants"],
                    applied=False,
                    reason="non_improving",
                    hv_before=result["hv_before"],
                    hv_after=result["hv_after"],
                    moves=result["moves"],
                    elapsed=elapsed,
                )
            else:
                applied = self.state.apply_reoptimization(
                    result["assignments"], epoch
                )
                cycle = ReoptimizeCycle(
                    index=len(self.cycles),
                    epoch=epoch,
                    tenants=result["tenants"],
                    applied=applied,
                    reason="applied" if applied else "stale",
                    hv_before=result["hv_before"],
                    hv_after=result["hv_after"],
                    moves=result["moves"],
                    elapsed=elapsed,
                )
            self.cycles.append(cycle)
            registry.gauge("service.reoptimize.last_hv_gain",
                           cycle.hv_after - cycle.hv_before)
            return cycle
