"""Service lifecycle: boot, signals, checkpoints, resume.

:class:`ServiceApp` assembles the control plane —
:class:`~repro.service.state.ServiceState` (authoritative state),
:class:`~repro.service.admission.AdmissionController` (fast path),
:class:`~repro.service.reoptimizer.Reoptimizer` (slow path) and
:class:`~repro.service.api.ApiServer` (front door) — and owns its
runtime story:

* **boot** — the estate comes from a scenario JSON (``--scenario
  FILE``), a *registered dynamic scenario* (``--scenario NAME``, see
  :mod:`repro.workloads.scenarios` — its compiled churn/failure stream
  is then played back through live admission window by window), a
  generated :class:`~repro.workloads.generator.ScenarioSpec`, or, with
  ``--resume``, the last service checkpoint;
* **signals** — SIGTERM/SIGINT are bridged into the asyncio loop via
  :func:`loop.add_signal_handler`; the first raises the process-wide
  shutdown flag (:func:`repro.runtime.signals.request_shutdown`) and
  starts a graceful unwind, a second forces exit;
* **checkpoints** — with ``--checkpoint-dir``, the admission worker's
  batch hook snapshots the full service payload (infrastructure +
  scheduler state + admission log + epoch) every
  ``checkpoint_every`` windows and once more on shutdown, through the
  same :class:`~repro.runtime.checkpoint.CheckpointManager` envelope
  (checksummed, atomic) the batch campaigns use;
* **resume** — ``python -m repro serve --resume --checkpoint-dir D``
  reloads that payload and restores residents byte-identically
  (provable with ``python -m repro verify --check-service D``).
"""

from __future__ import annotations

import asyncio
import json
import signal as _signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.ea.config import NSGAConfig
from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.signals import clear_shutdown, request_shutdown
from repro.serialization import infrastructure_from_dict, infrastructure_to_dict
from repro.service.admission import AdmissionController
from repro.service.api import ApiServer
from repro.service.reoptimizer import DEFAULT_MEMBERS, Reoptimizer
from repro.service.state import ServiceState
from repro.telemetry import get_registry
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

__all__ = ["ServiceConfig", "ServiceApp", "SERVICE_CHECKPOINT_KIND"]

#: Envelope kind of the service checkpoint payload.
SERVICE_CHECKPOINT_KIND = "service_checkpoint"
#: File stem of the service checkpoint inside the checkpoint directory.
SERVICE_CHECKPOINT_NAME = "service"


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` can set."""

    host: str = "127.0.0.1"
    port: int = 0
    servers: int = 16
    datacenters: int = 2
    vms: int = 32
    tightness: float = 0.65
    seed: int = 0
    window_length: float = 1.0
    #: Seconds between background reoptimization cycles.
    window_every: float = 30.0
    checkpoint_dir: str | None = None
    #: Service checkpoint cadence in admission windows.
    checkpoint_every: int = 50
    max_queue: int = 256
    #: Token-bucket rate limit in requests/second (0 = unlimited).
    rate: float = 0.0
    burst: int = 64
    population: int = 20
    evaluations: int = 600
    #: Worker processes for the reoptimizer's parallel engine (0 = serial).
    workers: int = 0
    #: Portfolio spec raced by the background reoptimizer.
    members: str = DEFAULT_MEMBERS
    #: Wall-clock budget per reoptimization solve (None = run to budget).
    deadline_ms: float | None = None
    scenario: str | None = None
    resume: bool = False

    def scenario_spec(self) -> ScenarioSpec:
        """The generated-estate spec when no scenario file is given."""
        return ScenarioSpec(
            servers=self.servers,
            datacenters=self.datacenters,
            vms=self.vms,
            tightness=self.tightness,
        )


class ServiceApp:
    """Owns the component graph and the serve/shutdown state machine."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.checkpoints: CheckpointManager | None = (
            CheckpointManager(config.checkpoint_dir)
            if config.checkpoint_dir
            else None
        )
        self.state: ServiceState | None = None
        self.controller: AdmissionController | None = None
        self.reoptimizer: Reoptimizer | None = None
        self.api: ApiServer | None = None
        self._stop = asyncio.Event()
        self._signals_seen = 0
        self._windows_at_checkpoint = 0
        #: Compiled dynamic scenario to play back (``--scenario NAME``).
        self._playback = None
        #: Set once the playback driver has admitted its last window.
        self.playback_done = asyncio.Event()

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def _build_state(self) -> ServiceState:
        config = self.config
        if config.resume:
            payload = self.load_checkpoint()
            infrastructure = infrastructure_from_dict(payload["infrastructure"])
            state = ServiceState(
                infrastructure,
                window_length=float(payload.get("window_length", config.window_length)),
                seed=int(payload["seed"]),
            )
            state.restore_payload(payload)
            return state
        if config.scenario:
            from repro.workloads.scenarios import (
                compile_scenario,
                scenario_names,
            )

            if config.scenario in scenario_names():
                # A registered dynamic scenario: serve its estate and
                # play its event stream back through live admission.
                self._playback = compile_scenario(
                    config.scenario, seed=config.seed
                )
                return ServiceState(
                    self._playback.infrastructure,
                    window_length=self._playback.spec.window_length,
                    seed=config.seed,
                )
            data = json.loads(Path(config.scenario).read_text())
            infrastructure = infrastructure_from_dict(data["infrastructure"])
        else:
            scenario = ScenarioGenerator(
                config.scenario_spec(), seed=config.seed
            ).generate()
            infrastructure = scenario.infrastructure
        return ServiceState(
            infrastructure,
            window_length=config.window_length,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    # Dynamic-scenario playback
    # ------------------------------------------------------------------
    def _playback_batches(self) -> list[dict[str, Any]]:
        """The compiled stream grouped into per-window admit() batches.

        Window ``w`` of the scenario (events with
        ``time // window_length == w``) becomes the ``w``-th admission
        micro-batch; empty windows are still closed so the service's
        logical clock tracks scenario time.
        """
        compiled = self._playback
        length = compiled.spec.window_length
        last = 0
        batches: dict[int, dict[str, list]] = {}

        def batch(time: float) -> dict[str, list]:
            nonlocal last
            index = int(time // length)
            last = max(last, index)
            return batches.setdefault(
                index,
                {
                    "arrivals": [],
                    "departures": [],
                    "failures": [],
                    "drains": [],
                    "recoveries": [],
                },
            )

        for event in compiled.arrivals:
            batch(event.time)["arrivals"].append((event.key, event.request))
        for event in compiled.departures:
            batch(event.time)["departures"].append(event.key)
        for event in compiled.failures:
            batch(event.time)["failures"].append(event.server)
        for event in compiled.drains:
            batch(event.time)["drains"].append(event.server)
        for event in compiled.recoveries:
            batch(event.time)["recoveries"].append(event.server)
        empty: dict[str, list] = {
            "arrivals": [],
            "departures": [],
            "failures": [],
            "drains": [],
            "recoveries": [],
        }
        return [batches.get(index, empty) for index in range(last + 1)]

    async def _drive_playback(self) -> None:
        """Admit the compiled scenario's windows one by one, then idle.

        Runs on the event loop (the service's single writer), yielding
        between windows so API traffic and checkpoints interleave; the
        admission log records the whole session for
        ``verify --check-service``.
        """
        registry = get_registry()
        name = self._playback.spec.name
        for batch in self._playback_batches():
            if self._stop.is_set():
                break
            self.state.admit(**batch)
            registry.count("service.scenario.windows", scenario=name)
            self._maybe_checkpoint()
            await asyncio.sleep(0)
        self.playback_done.set()
        print(
            f"repro.service scenario {name!r} played back "
            f"(windows={self.state.scheduler.window_index}, "
            f"tenants={self.state.tenant_count()})",
            flush=True,
        )

    def load_checkpoint(self) -> dict[str, Any]:
        """The last saved service payload (raises without one)."""
        if self.checkpoints is None:
            raise CheckpointError("--resume requires --checkpoint-dir")
        return self.checkpoints.load_state(
            SERVICE_CHECKPOINT_NAME, SERVICE_CHECKPOINT_KIND
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(self) -> None:
        """Snapshot the full service payload (atomic, checksummed)."""
        if self.checkpoints is None or self.state is None:
            return
        payload = {
            "infrastructure": infrastructure_to_dict(self.state.infrastructure),
            "window_length": self.state.scheduler.window_length,
            **self.state.state_payload(),
        }
        self.checkpoints.save_state(
            SERVICE_CHECKPOINT_NAME, SERVICE_CHECKPOINT_KIND, payload
        )
        get_registry().count("service.checkpoints")

    def _maybe_checkpoint(self) -> None:
        """Admission-batch hook: checkpoint every ``checkpoint_every`` windows."""
        if self.checkpoints is None or self.state is None:
            return
        windows = self.state.scheduler.window_index
        if windows - self._windows_at_checkpoint >= self.config.checkpoint_every:
            self._windows_at_checkpoint = windows
            self.save_checkpoint()

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _on_signal(self, signame: str) -> None:
        self._signals_seen += 1
        if self._signals_seen > 1:
            sys.exit(1)
        request_shutdown(reason=signame.lower())
        self._stop.set()

    def shutdown(self) -> None:
        """Programmatic graceful stop (same path as the first SIGTERM)."""
        self._stop.set()

    # ------------------------------------------------------------------
    # Serve
    # ------------------------------------------------------------------
    async def serve(self) -> int:
        """Boot, serve until stopped, unwind gracefully."""
        config = self.config
        self.state = self._build_state()
        self.controller = AdmissionController(
            self.state, max_queue=config.max_queue
        )
        self.controller.on_batch = self._maybe_checkpoint
        self.reoptimizer = Reoptimizer(
            self.state,
            config=NSGAConfig(
                population_size=config.population,
                max_evaluations=config.evaluations,
                seed=config.seed,
                n_workers=config.workers,
            ),
            every=config.window_every,
            members=config.members,
            deadline_ms=config.deadline_ms,
        )
        self.api = ApiServer(
            self.state,
            self.controller,
            reoptimizer=self.reoptimizer,
            host=config.host,
            port=config.port,
            rate=config.rate,
            burst=config.burst,
        )

        loop = asyncio.get_running_loop()
        installed: list[_signal.Signals] = []
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self._on_signal, signum.name
                )
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

        self.controller.start()
        reopt_task = loop.create_task(self.reoptimizer.run(), name="reoptimizer")
        playback_task = (
            loop.create_task(self._drive_playback(), name="scenario-playback")
            if self._playback is not None
            else None
        )
        port = await self.api.start()
        print(
            f"repro.service listening on http://{config.host}:{port} "
            f"(m={self.state.infrastructure.m} servers, "
            f"epoch={self.state.epoch})",
            flush=True,
        )
        try:
            await self._stop.wait()
        finally:
            await self.api.stop()
            await self.controller.stop()
            await self.reoptimizer.stop()
            reopt_task.cancel()
            try:
                await reopt_task
            except asyncio.CancelledError:
                pass
            if playback_task is not None:
                playback_task.cancel()
                try:
                    await playback_task
                except asyncio.CancelledError:
                    pass
            self.save_checkpoint()
            for signum in installed:
                loop.remove_signal_handler(signum)
            clear_shutdown()
            print(
                f"repro.service stopped (windows={self.state.scheduler.window_index}, "
                f"tenants={self.state.tenant_count()}, epoch={self.state.epoch})",
                flush=True,
            )
        return 0

    def run(self) -> int:
        """Blocking entry point used by ``python -m repro serve``."""
        return asyncio.run(self.serve())
