"""`repro.service` — the always-on allocation control plane.

Turns the batch :class:`~repro.scheduler.window.TimeWindowScheduler`
into a long-running service (ROADMAP item 1): an asyncio HTTP API
admits a continuous stream of placement requests in milliseconds
(greedy incumbent placement, micro-batched into scheduler windows)
while the NSGA-III+tabu stack chases better fronts in a background
reoptimizer and publishes migration plans through a copy-on-write,
epoch-guarded handoff.  Every mutation lands in a replayable admission
log, so the whole live session can be re-derived by the batch
scheduler (``python -m repro verify --check-service``) and resumed
byte-identically from a checkpoint (``python -m repro serve
--resume``).  See docs/SERVICE.md.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    diagnose_rejection,
)
from repro.service.api import ApiServer, TokenBucket
from repro.service.app import ServiceApp, ServiceConfig
from repro.service.loadgen import LoadGenerator, LoadReport
from repro.service.reoptimizer import Reoptimizer, ReoptimizeCycle, shadow_reoptimize
from repro.service.state import (
    ServiceState,
    default_admission_allocator,
    replay_admission_log,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ApiServer",
    "LoadGenerator",
    "LoadReport",
    "Reoptimizer",
    "ReoptimizeCycle",
    "ServiceApp",
    "ServiceConfig",
    "ServiceState",
    "TokenBucket",
    "default_admission_allocator",
    "diagnose_rejection",
    "replay_admission_log",
    "shadow_reoptimize",
]
