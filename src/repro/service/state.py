"""Single-writer, event-sourced state of the allocation service.

The control plane splits into a fast synchronous admission path and a
slow asynchronous reoptimization path, both of which ultimately talk to
one :class:`~repro.scheduler.window.TimeWindowScheduler`.
:class:`ServiceState` is the narrow waist between them:

* every mutation goes through one of two entry points —
  :meth:`admit` (an admission micro-batch closed as one scheduler
  window) or :meth:`apply_reoptimization` (a migration plan computed in
  the background) — and both are only ever called from the service's
  single writer (the asyncio event loop thread);
* every mutation appends a JSON-able record to the **admission log**,
  so the whole session can be replayed deterministically through a
  batch :class:`TimeWindowScheduler` (``repro.verify.service`` — the
  service's differential oracle);
* every mutation bumps the **epoch** counter.  The reoptimizer
  snapshots ``(state_dict, epoch)``, chews on the copy in a worker
  thread, and its plan is applied only if the epoch is unchanged —
  the copy-on-write handoff that keeps admission latency flat while
  NSGA-III+tabu runs in the background.  A plan raced by an admission,
  departure or drain is simply discarded as stale.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.allocator import Allocator
from repro.baselines.fits import BestFitAllocator
from repro.errors import SchedulerError
from repro.model.infrastructure import Infrastructure
from repro.model.placement import Placement
from repro.model.request import Request
from repro.scheduler.window import TimeWindowScheduler, WindowReport
from repro.serialization import request_from_dict, request_to_dict
from repro.telemetry import get_registry

__all__ = ["ServiceState", "default_admission_allocator", "replay_admission_log"]


def default_admission_allocator(seed: int = 0) -> Allocator:
    """The incumbent-placement algorithm of the admission path.

    Best-fit greedy: deterministic, never emits violating placements,
    and O(milliseconds) per micro-batch — the properties live admission
    needs.  Seeded so a replay constructs the byte-identical allocator.
    """
    return BestFitAllocator(seed=seed)


class ServiceState:
    """The service's authoritative allocation state (single writer).

    Parameters
    ----------
    infrastructure:
        The provider estate the service allocates.
    allocator:
        Admission allocator (defaults to seeded best-fit greedy).
    window_length:
        Simulated length of one admission micro-batch window.  The
        service clock is *logical*: it advances by this much per
        processed batch, which is what makes the admission log
        replayable.
    seed:
        Seed for the default allocator when ``allocator`` is not given.
    """

    def __init__(
        self,
        infrastructure: Infrastructure,
        allocator: Allocator | None = None,
        window_length: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.seed = int(seed)
        self.scheduler = TimeWindowScheduler(
            infrastructure=infrastructure,
            allocator=allocator or default_admission_allocator(seed),
            window_length=window_length,
        )
        #: Ordered JSON-able mutation records (see module docstring).
        self.log: list[dict[str, Any]] = []
        #: Monotonic mutation counter; the reoptimizer's staleness token.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Read side (safe from the event loop between mutations)
    # ------------------------------------------------------------------
    @property
    def infrastructure(self) -> Infrastructure:
        """The estate this service allocates."""
        return self.scheduler.infrastructure

    def residents(self) -> dict[str, list[int]]:
        """Hosted tenants and their committed placements (commit order)."""
        state = self.scheduler.state
        return {
            key: [int(g) for g in state.previous_assignment(key)]
            for key in state.tenants()
        }

    def tenant_count(self) -> int:
        """Number of currently hosted tenants."""
        return len(self.scheduler.state.tenants())

    def is_hosted(self, key: str) -> bool:
        """Whether ``key`` currently holds capacity."""
        return key in self.scheduler.state.tenants()

    def knows_key(self, key: str) -> bool:
        """Whether ``key`` was ever submitted (hosted OR rejected)."""
        return self.scheduler.has_request(key)

    # ------------------------------------------------------------------
    # Write side: admission micro-batches
    # ------------------------------------------------------------------
    def admit(
        self,
        arrivals: Sequence[tuple[str, Request]] = (),
        departures: Iterable[str] = (),
        failures: Iterable[int] = (),
        recoveries: Iterable[int] = (),
        drains: Iterable[int] = (),
    ) -> WindowReport:
        """Close one admission micro-batch as a scheduler window.

        All events are stamped at the current logical clock and the
        window is run immediately, so the decision comes back
        synchronously.  ``drains`` are maintenance evacuations —
        handled exactly like ``failures``, logged and reported apart.
        The batch — inputs *and* decisions — is appended to the
        admission log, and the epoch advances.
        """
        scheduler = self.scheduler
        arrivals = list(arrivals)
        departures = list(departures)
        failures = [int(s) for s in failures]
        recoveries = [int(s) for s in recoveries]
        drains = [int(s) for s in drains]
        for key, request in arrivals:
            scheduler.submit(key, request)
        clock = scheduler.clock
        for key in departures:
            scheduler.schedule_departure(key, at=clock)
        for server in failures:
            scheduler.schedule_failure(server, at=clock)
        for server in drains:
            scheduler.schedule_drain(server, at=clock)
        for server in recoveries:
            scheduler.schedule_recovery(server, at=clock)
        report = scheduler.run_window()
        record = {
            "type": "window",
            "window_index": report.window_index,
            "arrivals": [
                [key, request_to_dict(request)] for key, request in arrivals
            ],
            "departures": departures,
            "failures": failures,
            "recoveries": recoveries,
            "accepted": list(report.accepted),
            "rejected": list(report.rejected),
            "displaced": list(report.displaced),
        }
        if drains:
            # Only stamped when present, so logs from drain-free
            # sessions stay byte-identical to earlier releases.
            record["drains"] = drains
        self.log.append(record)
        self.epoch += 1
        get_registry().gauge("service.state.epoch", self.epoch)
        return report

    # ------------------------------------------------------------------
    # Write side: background reoptimization handoff
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[dict[str, Any], int]:
        """Copy-on-write handoff: ``(scheduler state_dict, epoch)``.

        The payload is a deep JSON-able copy — the background worker
        rebuilds a private shadow scheduler from it and never touches
        live state.
        """
        return self.scheduler.state_dict(), self.epoch

    def apply_reoptimization(
        self, assignments: Mapping[str, Sequence[int]], epoch: int
    ) -> bool:
        """Atomically adopt a migration plan computed against ``epoch``.

        Returns ``False`` (and changes nothing) when the state has
        moved on since the snapshot — the plan is stale.  Otherwise
        every listed tenant is re-committed to its new placement, the
        plan is appended to the admission log (verbatim genes, so
        replay does not need to re-run the optimizer) and the epoch
        advances.
        """
        registry = get_registry()
        if epoch != self.epoch:
            registry.count("service.reoptimize.stale")
            return False
        state = self.scheduler.state
        hosted = set(state.tenants())
        if set(assignments) != hosted:
            # Defensive: a plan must cover exactly the resident set it
            # was computed from; anything else means the epoch guard
            # was bypassed.
            raise SchedulerError(
                "reoptimization plan tenant set does not match residents"
            )
        infrastructure = self.scheduler.infrastructure
        for key in list(state.tenants()):
            genes = np.asarray(list(assignments[key]), dtype=np.int64)
            request = self.scheduler.request_for(key)
            placement = Placement(assignment=genes, infrastructure=infrastructure)
            state.release(key)
            state.commit(key, placement, request)
        self.log.append(
            {
                "type": "reoptimize",
                "epoch": epoch,
                "assignments": [
                    [key, [int(g) for g in genes]]
                    for key, genes in assignments.items()
                ],
            }
        )
        self.epoch += 1
        registry.count("service.reoptimize.applied")
        registry.gauge("service.state.epoch", self.epoch)
        return True

    # ------------------------------------------------------------------
    # Checkpoint payloads
    # ------------------------------------------------------------------
    def state_payload(self) -> dict[str, Any]:
        """JSON-able snapshot: scheduler state + admission log + epoch."""
        return {
            "seed": self.seed,
            "epoch": self.epoch,
            "scheduler": self.scheduler.state_dict(),
            "log": self.log,
        }

    def restore_payload(self, payload: dict[str, Any]) -> None:
        """Restore :meth:`state_payload` into this (fresh) state."""
        self.seed = int(payload["seed"])
        self.epoch = int(payload["epoch"])
        self.log = list(payload["log"])
        self.scheduler.load_state_dict(payload["scheduler"])


def replay_admission_log(
    infrastructure: Infrastructure,
    log: Sequence[dict[str, Any]],
    *,
    seed: int = 0,
    window_length: float = 1.0,
    allocator: Allocator | None = None,
) -> ServiceState:
    """Replay an admission log through a fresh batch scheduler.

    This is the deterministic half of the service's differential
    oracle: windows are re-run through the same (seeded) admission
    allocator, reoptimize records re-apply their recorded plans
    verbatim, and the resulting :class:`ServiceState` can be compared
    byte-for-byte against the live service's residents and ledger
    (see :mod:`repro.verify.service`).
    """
    replayed = ServiceState(
        infrastructure,
        allocator=allocator or default_admission_allocator(seed),
        window_length=window_length,
        seed=seed,
    )
    for record in log:
        kind = record.get("type")
        if kind == "window":
            replayed.admit(
                arrivals=[
                    (key, request_from_dict(data))
                    for key, data in record["arrivals"]
                ],
                departures=record.get("departures", ()),
                failures=record.get("failures", ()),
                recoveries=record.get("recoveries", ()),
                drains=record.get("drains", ()),
            )
        elif kind == "reoptimize":
            replayed.apply_reoptimization(
                dict((key, genes) for key, genes in record["assignments"]),
                epoch=replayed.epoch,
            )
        else:
            raise SchedulerError(f"unknown admission-log record type {kind!r}")
    return replayed
