"""Single-thread kernel-backend throughput (the tentpole bench).

Measures batch-evaluation ops/sec — full ``evaluate_population`` rows
per second, objectives + violations — for every conformant kernel
backend, against the honest pre-kernel baseline: the same reference
code evaluating the population one row at a time (how the repair loop
and delta-scoring fallbacks consumed the evaluator before the kernel
layer batched them).

Workload: populations with ~2% UNPLACED genes — the partially-placed
regime the repair path actually sees; fully-placed batches were already
one vectorized pass pre-PR and gain ≈1x, which ``docs/PERFORMANCE.md``
says out loud.

Asserted every run, before any number is reported:

* every backend's objectives/violations are **byte-identical** to the
  reference backend's on the measured population;
* at the largest measured size the numpy backend clears
  ``BATCH_VS_PER_ROW_FLOOR`` over the per-row baseline;
* when numba is importable its ops/sec must be >= the numpy backend's
  (else the JSON records the comparison as skipped with the reason).

``REPRO_BENCH_GATE=1`` additionally compares the numpy backend's
ops/sec per size against the committed ``BENCH_kernels.json`` and fails
on a > ``REGRESSION_TOLERANCE`` drop — the CI bench-smoke gate.

Results land in ``BENCH_kernels.json`` at the repo root with a full
environment block (cpu_count, backend, numba/numpy versions); the
default sizes are smoke-scale and ``REPRO_BENCH_FULL=1`` adds the
paper-scale 800 servers x 1600 VMs point.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import (
    bench_environment,
    bench_gate_enabled,
    full_sweep_enabled,
    scenario_for,
)
from repro.engine import CompiledProblem
from repro.engine.kernels import available_kernels, use_kernel
from repro.engine.kernels.numba_backend import HAVE_NUMBA
from repro.model.placement import UNPLACED
from repro.model.request import Request

#: Rows per measured batch — a generation's worth of genomes.
POP = 64
#: Fraction of genes knocked out to UNPLACED (the repair-path regime).
UNPLACED_FRACTION = 0.02
#: Enforced at the largest measured size: numpy batch vs per-row loop.
BATCH_VS_PER_ROW_FLOOR = 5.0
#: REPRO_BENCH_GATE=1 fails on a numpy ops/sec drop beyond this.
REGRESSION_TOLERANCE = 0.20
#: Minimum wall-clock per timing sample; repeats until reached.
MIN_SAMPLE_SECONDS = 0.25

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"


def _workload(servers: int, vms: int):
    """Compiled problem + a (POP, n) population with ~2% unplaced genes."""
    scenario = scenario_for(servers, vms, seed=3, tightness=0.9)
    merged, _ = Request.concatenate(list(scenario.requests))
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    rng = np.random.default_rng(17)
    population = rng.integers(
        0, scenario.infrastructure.m, size=(POP, merged.n), dtype=np.int64
    )
    knockout = rng.random(population.shape) < UNPLACED_FRACTION
    population[knockout] = UNPLACED
    return compiled, population


def _rows_per_sec(run_once, rows: int) -> float:
    """ops/sec (rows evaluated per second) over >= MIN_SAMPLE_SECONDS."""
    run_once()  # warmup — includes any JIT compilation
    total_rows = 0
    t0 = time.perf_counter()
    while (elapsed := time.perf_counter() - t0) < MIN_SAMPLE_SECONDS:
        run_once()
        total_rows += rows
    return total_rows / elapsed


def test_kernel_backend_throughput():
    full = full_sweep_enabled()
    sizes = [(60, 120), (120, 240)] + ([(800, 1600)] if full else [])
    backends = available_kernels()

    prior = None
    if bench_gate_enabled() and RESULT_PATH.exists():
        prior = json.loads(RESULT_PATH.read_text())

    sweep = []
    for servers, vms in sizes:
        compiled, population = _workload(servers, vms)
        evaluator = compiled.evaluator()

        # Baseline: the reference code fed one row at a time (pre-kernel
        # consumption pattern of the repair/delta paths).
        with use_kernel("reference"):
            per_row_ops = _rows_per_sec(
                lambda: [
                    evaluator.evaluate_population(population[i : i + 1])
                    for i in range(population.shape[0])
                ],
                population.shape[0],
            )
            baseline = evaluator.evaluate_population(population)

        point = {
            "servers": servers,
            "vms": vms,
            "attributes": int(compiled.infrastructure.h),
            "rows": int(population.shape[0]),
            "unplaced_fraction": UNPLACED_FRACTION,
            "per_row_reference_ops_per_sec": round(per_row_ops, 1),
            "backends": {},
        }
        for name in backends:
            with use_kernel(name):
                result = evaluator.evaluate_population(population)
                assert (
                    result.objectives.tobytes() == baseline.objectives.tobytes()
                ), f"{name} objectives diverge from reference at {servers}x{vms}"
                assert (
                    result.violations.tobytes() == baseline.violations.tobytes()
                ), f"{name} violations diverge from reference at {servers}x{vms}"
                ops = _rows_per_sec(
                    lambda: evaluator.evaluate_population(population),
                    population.shape[0],
                )
            point["backends"][name] = {
                "batch_ops_per_sec": round(ops, 1),
                "speedup_vs_per_row": round(ops / per_row_ops, 2),
            }
        sweep.append(point)

    largest = sweep[-1]
    numpy_ops = largest["backends"]["numpy"]["batch_ops_per_sec"]
    numpy_speedup = largest["backends"]["numpy"]["speedup_vs_per_row"]

    numba_gate = {"enforced": HAVE_NUMBA}
    if HAVE_NUMBA:
        numba_ops = largest["backends"]["numba"]["batch_ops_per_sec"]
        numba_gate["numba_vs_numpy"] = round(numba_ops / numpy_ops, 2)
    else:
        numba_gate["reason"] = "numba not importable on this host"

    regression_gate = {"enforced": prior is not None}
    if prior is not None:
        drops = []
        for point in sweep:
            match = next(
                (
                    p
                    for p in prior.get("sweep", [])
                    if p["servers"] == point["servers"]
                    and p["vms"] == point["vms"]
                ),
                None,
            )
            if match is None:
                continue
            before = match["backends"]["numpy"]["batch_ops_per_sec"]
            now = point["backends"]["numpy"]["batch_ops_per_sec"]
            if now < before * (1.0 - REGRESSION_TOLERANCE):
                drops.append(
                    f"{point['servers']}x{point['vms']}: numpy "
                    f"{now:.0f} ops/s < {1 - REGRESSION_TOLERANCE:.0%} "
                    f"of committed {before:.0f}"
                )
        regression_gate["tolerance"] = REGRESSION_TOLERANCE
        regression_gate["drops"] = drops
    else:
        regression_gate["reason"] = (
            "REPRO_BENCH_GATE unset or no committed BENCH_kernels.json"
        )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "pop": POP,
                "batch_vs_per_row_floor": BATCH_VS_PER_ROW_FLOOR,
                "numba_gate": numba_gate,
                "regression_gate": regression_gate,
                "sweep": sweep,
                "full_size": full,
                "environment": bench_environment(),
            },
            indent=2,
        )
        + "\n"
    )

    assert numpy_speedup >= BATCH_VS_PER_ROW_FLOOR, (
        f"numpy batch only {numpy_speedup:.1f}x over per-row at "
        f"{largest['servers']}x{largest['vms']} "
        f"(floor {BATCH_VS_PER_ROW_FLOOR}x)"
    )
    if HAVE_NUMBA:
        assert numba_gate["numba_vs_numpy"] >= 1.0, (
            f"numba backend slower than numpy "
            f"({numba_gate['numba_vs_numpy']:.2f}x) at the largest size"
        )
    if prior is not None:
        assert not regression_gate["drops"], "; ".join(regression_gate["drops"])


if __name__ == "__main__":
    test_kernel_backend_throughput()
