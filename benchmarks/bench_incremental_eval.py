"""Incremental vs full-tile move-scoring throughput (the engine bench).

Measures how many single-VM relocation candidates per second the tabu
layer can score

* the old way — tile the current genome into a batch, flip one gene per
  row, and run :meth:`PopulationEvaluator.evaluate_population`;
* the delta way — :meth:`IncrementalEvaluator.score_move`.

Both paths score the *same* moves from the *same* start, and the run
asserts objective/violation parity move-by-move before reporting any
number — a throughput win with wrong scores would be worthless.

Results land in ``BENCH_incremental_eval.json`` at the repo root.
Default size is smoke-scale (CI runs it on every push and fails on
parity mismatch); ``REPRO_BENCH_FULL=1`` runs the paper-scale 800
servers x 1600 VMs point, where the >= 5x speedup floor is enforced.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_environment, full_sweep_enabled, scenario_for
from repro.engine import CompiledProblem
from repro.model.request import Request

#: Candidate moves scored per batch — the old search's neighbourhood.
BATCH = 64
#: Enforced at the paper-scale size (full-tile cost grows with n*m*h,
#: delta cost does not; small smoke sizes understate the gap).
SPEEDUP_FLOOR = 5.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_incremental_eval.json"


def _sample_moves(rng, current, m, count):
    moves = []
    while len(moves) < count:
        vm = int(rng.integers(0, current.shape[0]))
        srv = int(rng.integers(0, m))
        if srv != current[vm]:
            moves.append((vm, srv))
    return moves


def _full_tile_scores(evaluator, current, moves):
    """Score ``moves`` the pre-engine way: one tiled batch per BATCH."""
    violations = np.empty(len(moves), dtype=np.int64)
    objectives = np.empty((len(moves), 3))
    for start in range(0, len(moves), BATCH):
        chunk = moves[start : start + BATCH]
        batch = np.tile(current, (len(chunk), 1))
        for row, (vm, srv) in enumerate(chunk):
            batch[row, vm] = srv
        result = evaluator.evaluate_population(batch)
        violations[start : start + len(chunk)] = result.violations
        objectives[start : start + len(chunk)] = result.objectives
    return violations, objectives


def test_incremental_eval_throughput():
    full = full_sweep_enabled()
    servers, vms = (800, 1600) if full else (120, 240)
    moves_count = 256 if full else 512

    scenario = scenario_for(servers, vms, seed=3)
    merged, _ = Request.concatenate(list(scenario.requests))
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    evaluator = compiled.evaluator()

    rng = np.random.default_rng(7)
    current = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    moves = _sample_moves(rng, current, scenario.infrastructure.m, moves_count)

    # Full-tile path.
    t0 = time.perf_counter()
    full_viol, full_obj = _full_tile_scores(evaluator, current, moves)
    full_elapsed = time.perf_counter() - t0

    # Delta path.
    state = compiled.incremental(current)
    t0 = time.perf_counter()
    delta_scores = [state.score_move(vm, srv) for vm, srv in moves]
    delta_elapsed = time.perf_counter() - t0
    state.flush_telemetry()

    # Parity, move by move: violations exact, objectives to float noise.
    mismatches = 0
    for i, score in enumerate(delta_scores):
        if score.violations != full_viol[i]:
            mismatches += 1
        elif not np.allclose(score.objectives, full_obj[i], rtol=1e-9, atol=1e-9):
            mismatches += 1
    assert mismatches == 0, f"{mismatches}/{len(moves)} moves disagree"

    full_rate = len(moves) / full_elapsed
    delta_rate = len(moves) / delta_elapsed
    speedup = delta_rate / full_rate
    record = {
        "servers": servers,
        "vms": vms,
        "attributes": int(scenario.infrastructure.h),
        "moves_scored": len(moves),
        "full_tile_moves_per_sec": round(full_rate, 1),
        "delta_moves_per_sec": round(delta_rate, 1),
        "speedup": round(speedup, 2),
        "parity_checked": len(moves),
        "parity_mismatches": mismatches,
        "full_size": full,
        "environment": bench_environment(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if full:
        assert speedup >= SPEEDUP_FLOOR, (
            f"delta scoring only {speedup:.1f}x faster than full-tile "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
