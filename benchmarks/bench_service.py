"""Load test of the always-on allocation service (the e2e demo).

Boots the full :class:`~repro.service.app.ServiceApp` in-process on an
ephemeral port, replays a seeded open-loop trace through the real HTTP
stack with :class:`~repro.service.loadgen.LoadGenerator`, forces one
background reoptimization cycle, shuts down gracefully (final
checkpoint) and then proves the session with the conformance oracle
(``verify --check-service`` semantics).  Asserted every run:

* **zero 5xx** across the whole replay;
* the reoptimize cycle completes and **improves or preserves** the
  live front's hypervolume (a non-improving plan must be discarded,
  an applied one must not shrink it);
* the shutdown checkpoint **replays byte-identically** through the
  batch scheduler.

Results land in ``BENCH_service.json`` at the repo root: p50/p99
admission latency, sustained requests/sec, rejection/throttle counts
and the reoptimizer's before/after hypervolume.  The default replay is
smoke-scale (~300 requests); ``REPRO_BENCH_FULL=1`` (or
``REPRO_SERVICE_E2E=1``) raises it past the 1 000-request bar of the
acceptance demo.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from pathlib import Path

from benchmarks.conftest import bench_environment
from repro.service import LoadGenerator, ServiceApp, ServiceConfig
from repro.verify import check_service_conformance
from repro.workloads.generator import ScenarioSpec
from repro.workloads.traces import TraceSpec

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

_FULL = bool(
    os.environ.get("REPRO_BENCH_FULL") or os.environ.get("REPRO_SERVICE_E2E")
)
#: Replay size: past the 1k acceptance bar in full mode, smoke otherwise.
MAX_EVENTS = 1200 if _FULL else 300


async def _drive(checkpoint_dir: str) -> dict:
    """Boot, replay, reoptimize, shut down; returns the bench record."""
    config = ServiceConfig(
        port=0,
        servers=16,
        datacenters=2,
        vms=64,
        seed=11,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=50,
        population=16,
        evaluations=320,
        # Periodic cycles stay out of the way; the bench triggers one
        # deterministically through the API instead.
        window_every=3600.0,
    )
    app = ServiceApp(config)
    serve_task = asyncio.create_task(app.serve())
    while app.api is None or app.api.port == 0:
        await asyncio.sleep(0.02)
    port = app.api.port

    generator = LoadGenerator(
        "127.0.0.1",
        port,
        trace_spec=TraceSpec(
            horizon=60.0, arrival_rate=20.0, mean_lifetime=10.0
        ),
        scenario_spec=ScenarioSpec(
            servers=16, datacenters=2, vms=64, max_request_size=4
        ),
        rate=400.0,
        seed=11,
    )
    load = await generator.run(max_events=MAX_EVENTS)

    from repro.service.loadgen import _Client

    client = _Client("127.0.0.1", port)
    status, reopt = await client.request("POST", "/reoptimize")
    assert status == 200, f"reoptimize endpoint answered {status}"
    status, health = await client.request("GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    await client.close()

    app.shutdown()
    rc = await serve_task
    assert rc == 0

    return {
        "config": {
            "servers": config.servers,
            "vms": config.vms,
            "seed": config.seed,
            "max_events": MAX_EVENTS,
            "full": _FULL,
        },
        "load": load.to_dict(),
        "reoptimize": reopt,
        "windows": app.state.scheduler.window_index,
        "tenants": app.state.tenant_count(),
        "epoch": app.state.epoch,
    }


def test_service_load() -> None:
    """The end-to-end service demo (see module docstring)."""
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        record = asyncio.run(_drive(checkpoint_dir))
        conformance = check_service_conformance(checkpoint_dir)

        load = record["load"]
        assert load["errors_5xx"] == 0, f"5xx responses: {load['statuses']}"
        assert load["requests"] >= MAX_EVENTS * 0.99

        cycle = record["reoptimize"].get("cycle")
        assert record["reoptimize"]["ran"] and cycle is not None
        # Improve-or-preserve: an applied plan must not have shrunk the
        # hypervolume; a shrinking plan must have been discarded.
        if cycle["applied"]:
            assert cycle["hv_after"] >= cycle["hv_before"]
        else:
            assert cycle["reason"] in ("non_improving", "stale", "infeasible")

        assert conformance.ok, conformance.format()

        record["conformance"] = {
            "ok": conformance.ok,
            "records": conformance.records,
            "windows": conformance.windows,
            "reoptimizations": conformance.reoptimizations,
            "residents": conformance.residents,
            "comparisons": conformance.comparisons,
        }
        record["latency_p50"] = load["latency_p50"]
        record["latency_p99"] = load["latency_p99"]
        record["throughput_rps"] = load["throughput_rps"]
        record["environment"] = bench_environment()
        RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
        print(
            f"p50={load['latency_p50'] * 1e3:.2f}ms "
            f"p99={load['latency_p99'] * 1e3:.2f}ms "
            f"rps={load['throughput_rps']:.0f} "
            f"rejected={load['rejected']} throttled={load['throttled']}"
        )


if __name__ == "__main__":
    test_service_load()
