"""Ablation — scheduling window length versus outcome quality.

The paper batches "all requests within a cyclic time window"; window
length is the knob it never sweeps.  Short windows mean small batches
(less packing context per optimization, more optimizer invocations);
long windows batch more requests per solve.  This bench runs the same
arrival stream through the scheduler at several window lengths and
reports acceptance and total provider cost.
"""

import numpy as np
import pytest

from benchmarks.conftest import scenario_for
from repro.baselines import BestFitAllocator
from repro.scheduler import TimeWindowScheduler

WINDOWS = [0.5, 1.0, 2.0, 4.0]


@pytest.mark.parametrize("window", WINDOWS)
def test_ablation_window_length(benchmark, window):
    scenario = scenario_for(24, 72, seed=10, tightness=0.6)
    rng = np.random.default_rng(0)
    arrivals = rng.uniform(0.0, 8.0, size=scenario.n_requests)

    def run():
        scheduler = TimeWindowScheduler(
            scenario.infrastructure, BestFitAllocator(), window_length=window
        )
        for i, request in enumerate(scenario.requests):
            scheduler.submit(f"r{i}", request, at=float(arrivals[i]))
        return scheduler.run(max_windows=64), scheduler

    (reports, scheduler) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    accepted = sum(len(r.accepted) for r in reports)
    rejected = sum(len(r.rejected) for r in reports)
    benchmark.extra_info["windows_processed"] = len(reports)
    benchmark.extra_info["accepted"] = accepted
    benchmark.extra_info["rejected"] = rejected
    scheduler.state.verify_consistency()
    assert accepted + rejected == scenario.n_requests
