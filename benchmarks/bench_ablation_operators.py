"""Ablation — SBX/PM versus discrete operators, and repair neighbour
orders.

The paper uses "SBX and PM standard" on integer server-id genomes,
which implicitly assumes numerically close server ids are related
(true under the generator's contiguous datacenter layout).  The
discrete pair (uniform crossover + random-reset mutation) is the
order-free alternative; this bench compares final front quality
(hypervolume) and feasibility under the tabu-repair handler.

A second axis ablates the Fig. 6 neighbour order: the paper's literal
first-fit scan vs. best-fit packing vs. random walk.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_EA, scenario_for
from repro.ea import NSGA3, RepairHandling, hypervolume
from repro.ea.operators import (
    polynomial_mutation,
    random_reset_mutation,
    sbx_crossover,
    uniform_crossover,
)
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.tabu import TabuRepair


class _DiscreteNSGA3(NSGA3):
    """NSGA-III variant using the categorical operator pair
    (overrides the engine's variation template method)."""

    algorithm_name = "nsga3_discrete_ops"

    def _variation(self, parents, n_servers, rng):
        offspring = uniform_crossover(
            parents, rate=self.config.sbx_rate, seed=rng
        )
        return random_reset_mutation(
            offspring, n_servers=n_servers, rate=self.config.pm_rate, seed=rng
        )


@pytest.mark.parametrize("operators", ["sbx_pm", "uniform_reset"])
def test_ablation_variation_operators(benchmark, operators):
    scenario = scenario_for(24, 48, seed=8, tightness=0.65)
    merged, _ = Request.concatenate(scenario.requests)

    def run():
        repair = TabuRepair(scenario.infrastructure, merged, seed=0)
        handler = RepairHandling(repair)
        cls = NSGA3 if operators == "sbx_pm" else _DiscreteNSGA3
        engine = cls(BENCH_EA, handler=handler)
        evaluator = PopulationEvaluator(scenario.infrastructure, merged)
        return engine.run(evaluator)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    front = result.pareto_front()
    reference = result.population.objectives.max(axis=0) * 1.1 + 1.0
    benchmark.extra_info["front_size"] = len(front)
    benchmark.extra_info["hypervolume"] = round(
        hypervolume(front.objectives, reference), 1
    )
    benchmark.extra_info["best_violations"] = result.best_violations()
    assert result.best_violations() == 0


@pytest.mark.parametrize("order", ["first", "best_fit", "random"])
def test_ablation_repair_neighbour_order(benchmark, order):
    scenario = scenario_for(24, 48, seed=9, tightness=0.7)
    merged, _ = Request.concatenate(scenario.requests)
    rng = np.random.default_rng(0)
    population = rng.integers(0, scenario.infrastructure.m, size=(30, merged.n))

    def run():
        repair = TabuRepair(
            scenario.infrastructure, merged, order=order, seed=1
        )
        return repair(population), repair

    (fixed, repair) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    from repro.constraints import ConstraintSet

    constraint_set = ConstraintSet(
        scenario.infrastructure, merged, include_assignment=False
    )
    violations = constraint_set.batch_violations(fixed)
    benchmark.extra_info["mean_violations_after"] = round(
        float(violations.mean()), 2
    )
    benchmark.extra_info["moves"] = repair.moves_performed
    before = constraint_set.batch_violations(population)
    assert np.all(violations <= before)
