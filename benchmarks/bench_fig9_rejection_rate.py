"""Figure 9 — rejection rate versus problem size.

Paper claim: "the Round Robin and unmodified NSGA algorithms reject
many more requests than the evolutionary algorithms [with repair].
The NSGA-III with the Tabu Search ... outperforms all other algorithms
in terms of acceptance rate."

The benchmark time is incidental here; the *figure* is the rejection
series, printed as a text table and recorded per-benchmark in
``extra_info["rejection_rate"]``.
"""

import pytest

from benchmarks.conftest import paper_algorithms, scenario_for
from repro.evaluation import ExperimentRunner, format_series_table
from repro.workloads import ScenarioSpec

SIZES = [(16, 32), (32, 64), (64, 128)]


@pytest.mark.parametrize("servers,vms", SIZES, ids=[f"{s}x{v}" for s, v in SIZES])
@pytest.mark.parametrize("algo", sorted(paper_algorithms()))
def test_fig9_rejection_rate(benchmark, algo, servers, vms):
    scenario = scenario_for(servers, vms, seed=3, tightness=0.7)
    factory = paper_algorithms()[algo]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["rejection_rate"] = round(outcome.rejection_rate, 3)


def test_fig9_series_report(benchmark, capsys):
    """Print the full Figure 9 series (averaged over 2 scenarios).

    The slow nsga3_cp hybrid is measured point-wise above but dropped
    from the averaged series to keep the report interactive.
    """
    factories = {
        k: v for k, v in paper_algorithms().items() if k != "nsga3_cp"
    }
    runner = ExperimentRunner(factories, runs=2, seed=3)
    specs = [
        ScenarioSpec(servers=s, datacenters=2, vms=v, tightness=0.7)
        for s, v in SIZES[:2]
    ]
    result = benchmark.pedantic(
        lambda: runner.run_sweep(specs), rounds=1, iterations=1, warmup_rounds=0
    )
    table = format_series_table(
        result, "rejection_rate", title="Figure 9: rejection rate vs size"
    )
    with capsys.disabled():
        print("\n" + table)
    # Paper shape: the tabu hybrid never rejects more than round robin.
    series = result.series("rejection_rate")
    for tabu, rr in zip(series["nsga3_tabu"], series["round_robin"]):
        assert tabu <= rr + 0.05
