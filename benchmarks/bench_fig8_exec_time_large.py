"""Figure 8 — average execution time, many resources.

Paper claim: the complete methods stop scaling ("the constraint
propagation algorithms, round robin and NSGA-III improved with
constraint propagation algorithm doesn't scale with the resolution
time criterion") while NSGA-III — tabu included — keeps returning
solutions in short time on large instances.

Default sizes stop at 200x400 so the harness stays interactive; set
``REPRO_BENCH_FULL=1`` for the paper's 400x800 and 800x1600 points.
The nsga3_cp hybrid is dropped from the largest sizes — its per-genome
CP repair is exactly the non-scaling behaviour the figure documents,
and one data point at 100x200 is enough to show it.
"""

import pytest

from benchmarks.conftest import full_sweep_enabled, paper_algorithms, scenario_for

SIZES = [(100, 200), (200, 400)]
if full_sweep_enabled():
    SIZES += [(400, 800), (800, 1600)]

#: Algorithms measured at every size.
SCALING_ALGOS = ["round_robin", "constraint_programming", "nsga2", "nsga3", "nsga3_tabu"]


@pytest.mark.parametrize("servers,vms", SIZES, ids=[f"{s}x{v}" for s, v in SIZES])
@pytest.mark.parametrize("algo", SCALING_ALGOS)
def test_fig8_execution_time(benchmark, algo, servers, vms):
    scenario = scenario_for(servers, vms, seed=2)
    factory = paper_algorithms()[algo]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["rejection_rate"] = round(outcome.rejection_rate, 3)
    benchmark.extra_info["violations"] = outcome.violations


def test_fig8_cp_hybrid_single_point(benchmark):
    """One nsga3_cp point — the hybrid whose repair does not scale."""
    scenario = scenario_for(100, 200, seed=2)
    factory = paper_algorithms()["nsga3_cp"]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["violations"] = outcome.violations
