"""Anytime-portfolio bench: hypervolume vs wall-clock at fixed deadlines.

The PR 7 pitch is that racing the paper's champion against the exact CP
solve and a standalone tabu walk — all trading incumbents through one
Pareto pool — buys a *better front per wall-clock second* than the
champion alone.  This bench measures exactly that: at each deadline the
solo NSGA-III + tabu allocator and the portfolio get the same wall
clock, and the dominated hypervolume of their final feasible fronts is
compared under one shared reference point.

Gate: the pooled portfolio front must reach at least
``HV_FLOOR_FRACTION`` of the solo hypervolume at *every* deadline (the
small slack absorbs epoch-boundary granularity — both solvers only
check the clock between atomic work units).  The portfolio winning
outright is the expected outcome; losing badly fails the build.

Also asserts the :func:`~repro.ea.hypervolume.reference_point` memo
actually caches (same bytes in, same array object out) — the
hypervolume path of this bench is what that cache serves.

Results land in ``BENCH_portfolio.json`` at the repo root.  CI runs the
default smoke deadlines on every push; ``REPRO_BENCH_FULL=1`` raises
the scenario size and stretches the deadlines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_environment, full_sweep_enabled, scenario_for
from repro import NSGAConfig, NSGA3TabuAllocator
from repro.ea.hypervolume import (
    hypervolume,
    reference_point,
    reference_point_cache_info,
)
from repro.portfolio import PortfolioAllocator

#: The portfolio must retain at least this fraction of the solo
#: hypervolume at an equal deadline (slack = clock granularity).
HV_FLOOR_FRACTION = 0.97

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_portfolio.json"


def _solo_front(scenario, config, deadline_s):
    """Deadline-bounded solo run; returns (front, generations)."""
    allocator = NSGA3TabuAllocator(config)
    try:
        run = allocator.start(scenario.infrastructure, scenario.requests)
        end = time.perf_counter() + deadline_s
        run.set_deadline(end)
        while time.perf_counter() < end and run.step():
            pass
        front = np.array(run.best_front(), copy=True)
        generations = run.run.generation
        run.finish()
        return front, generations
    finally:
        allocator.close()


def _portfolio_front(scenario, config, deadline_s):
    """Deadline-bounded race; returns (front, epochs, pool size, trace).

    ``trace`` is the anytime curve: (elapsed seconds, pooled-front
    rows) after every epoch — the raw material of the hv-vs-wall-clock
    story, recorded without extra solver work.
    """
    allocator = PortfolioAllocator(config=config)
    try:
        run = allocator.start(scenario.infrastructure, scenario.requests)
        started = time.perf_counter()
        run.set_deadline(started + deadline_s)
        trace = []
        while run.step():
            trace.append(
                (time.perf_counter() - started, len(run.pool))
            )
        front = np.array(run.best_front(), copy=True)
        epochs, pool_size = run.epoch, len(run.pool)
        run.finish()
        return front, epochs, pool_size, trace
    finally:
        allocator.close()


def test_portfolio_vs_solo_at_equal_deadlines():
    full = full_sweep_enabled()
    servers, vms = (32, 64) if full else (8, 16)
    deadlines_ms = (2000.0, 4000.0, 8000.0) if full else (1000.0, 2000.0, 4000.0)
    scenario = scenario_for(servers, vms, seed=7, tightness=0.7)
    config = NSGAConfig(
        population_size=20,
        max_evaluations=10_000_000,  # the deadline is the budget
        seed=7,
    )

    rows = []
    fronts = []
    for deadline_ms in deadlines_ms:
        deadline_s = deadline_ms / 1000.0
        solo_front, generations = _solo_front(scenario, config, deadline_s)
        race_front, epochs, pool_size, trace = _portfolio_front(
            scenario, config, deadline_s
        )
        fronts.extend([solo_front, race_front])
        rows.append(
            {
                "deadline_ms": deadline_ms,
                "solo_front": solo_front,
                "portfolio_front": race_front,
                "solo_generations": generations,
                "portfolio_epochs": epochs,
                "pool_size": pool_size,
                "pool_growth": [
                    {"seconds": round(t, 3), "pool": p} for t, p in trace[::4]
                ],
            }
        )

    # One shared reference across every measured front, so hypervolume
    # numbers are comparable between solvers and deadlines.
    stacked = np.vstack(fronts)
    reference = reference_point(stacked)
    again = reference_point(stacked)
    assert again is reference, "reference_point memo did not cache"
    assert reference_point_cache_info().hits >= 1

    report = []
    failures = []
    for row in rows:
        solo_hv = hypervolume(row.pop("solo_front"), reference)
        portfolio_hv = hypervolume(row.pop("portfolio_front"), reference)
        row["solo_hv"] = round(solo_hv, 6)
        row["portfolio_hv"] = round(portfolio_hv, 6)
        row["hv_ratio"] = round(
            portfolio_hv / solo_hv if solo_hv > 0 else float("inf"), 4
        )
        report.append(row)
        if portfolio_hv < HV_FLOOR_FRACTION * solo_hv:
            failures.append(
                f"deadline {row['deadline_ms']}ms: portfolio hv "
                f"{portfolio_hv:.4f} < {HV_FLOOR_FRACTION} * solo "
                f"{solo_hv:.4f}"
            )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "servers": servers,
                "vms": vms,
                "seed": 7,
                "members": "nsga3_tabu+cp+tabu",
                "hv_floor_fraction": HV_FLOOR_FRACTION,
                "environment": bench_environment(),
                "deadlines": report,
                "full_size": full,
            },
            indent=2,
        )
        + "\n"
    )

    assert not failures, "; ".join(failures)
