"""Figure 10 — violated constraints versus problem size.

Paper claim: "Figure 10 shows only two types of bars because there are
only two algorithms (NSGA-II & NSGA-III) that generate constraint
violations" — every other method either satisfies or rejects.
"""

import pytest

from benchmarks.conftest import paper_algorithms, scenario_for
from repro.evaluation import ExperimentRunner, format_series_table
from repro.workloads import ScenarioSpec

SIZES = [(16, 32), (32, 64), (64, 128)]


@pytest.mark.parametrize("servers,vms", SIZES, ids=[f"{s}x{v}" for s, v in SIZES])
@pytest.mark.parametrize("algo", sorted(paper_algorithms()))
def test_fig10_violations(benchmark, algo, servers, vms):
    scenario = scenario_for(servers, vms, seed=4, tightness=0.7)
    factory = paper_algorithms()[algo]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["violations"] = outcome.violations
    if algo in ("round_robin", "constraint_programming"):
        assert outcome.violations == 0


def test_fig10_series_report(benchmark, capsys):
    """Print the Figure 10 series and assert the two-bars shape."""
    factories = {
        k: v for k, v in paper_algorithms().items() if k != "nsga3_cp"
    }
    runner = ExperimentRunner(factories, runs=2, seed=4)
    specs = [
        ScenarioSpec(servers=s, datacenters=2, vms=v, tightness=0.7)
        for s, v in SIZES[:2]
    ]
    result = benchmark.pedantic(
        lambda: runner.run_sweep(specs), rounds=1, iterations=1, warmup_rounds=0
    )
    table = format_series_table(
        result, "violations", title="Figure 10: violated constraints vs size"
    )
    with capsys.disabled():
        print("\n" + table)
    series = result.series("violations")
    # Non-EA methods and the repaired hybrids never violate.
    for algo in ("round_robin", "constraint_programming"):
        assert all(v == 0 for v in series[algo]), algo
    # The unmodified EAs are the violating bars.
    assert any(v > 0 for v in series["nsga2"])
    assert any(v > 0 for v in series["nsga3"])
    # The tabu hybrid stays (near) zero.
    assert all(v <= 0.5 for v in series["nsga3_tabu"])
