"""Figure 11 — average provider cost per algorithm.

Paper claim: "the unmodified evolutionary algorithms incur high cost.
The Constraint Programming, the NSGA-III with constraint solver and the
Tabu Search induce the lowest cost penalty"; NSGA-III+Tabu "accepts
more requests while maintaining provider hosting costs at levels
similar to those reached in constraint programming which conversely
rejects a greater number of demands (... creating a misleading
impression that this method performs best)".

Cost is recorded per benchmark in ``extra_info`` and printed as a
series table together with the rejection rate — the pair is the whole
point of the figure's discussion.
"""

import pytest

from benchmarks.conftest import paper_algorithms, scenario_for
from repro.evaluation import ExperimentRunner, format_series_table
from repro.workloads import ScenarioSpec

SIZES = [(16, 32), (32, 64)]


@pytest.mark.parametrize("servers,vms", SIZES, ids=[f"{s}x{v}" for s, v in SIZES])
@pytest.mark.parametrize("algo", sorted(paper_algorithms()))
def test_fig11_provider_cost(benchmark, algo, servers, vms):
    scenario = scenario_for(servers, vms, seed=5, tightness=0.65)
    factory = paper_algorithms()[algo]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["provider_cost"] = round(outcome.provider_cost, 1)
    benchmark.extra_info["rejection_rate"] = round(outcome.rejection_rate, 3)


def test_fig11_series_report(benchmark, capsys):
    """Print the cost series and assert the cost/rejection trade-off."""
    factories = {
        k: v for k, v in paper_algorithms().items() if k != "nsga3_cp"
    }
    runner = ExperimentRunner(factories, runs=2, seed=5)
    specs = [
        ScenarioSpec(servers=s, datacenters=2, vms=v, tightness=0.65)
        for s, v in SIZES
    ]
    result = benchmark.pedantic(
        lambda: runner.run_sweep(specs), rounds=1, iterations=1, warmup_rounds=0
    )
    with capsys.disabled():
        print(
            "\n"
            + format_series_table(
                result, "provider_cost", title="Figure 11: provider cost"
            )
        )
        print(
            "\n"
            + format_series_table(
                result,
                "rejection_rate",
                title="Figure 11 (context): rejection rate",
            )
        )
    cost = result.series("provider_cost")
    rejection = result.series("rejection_rate")
    for idx in range(len(SIZES)):
        # The tabu hybrid hosts at least as much as CP...
        assert rejection["nsga3_tabu"][idx] <= rejection["constraint_programming"][idx] + 0.05
        # ...at a cost within a reasonable factor of CP's (which may be
        # hosting fewer requests, hence cheaper).
        assert cost["nsga3_tabu"][idx] <= 2.0 * cost["constraint_programming"][idx]
