"""Table II — comparison of allocation algorithms for cloud resources.

The paper grades Round Robin, Constraint Programming, NSGA and a
filtering algorithm on four needs.  Here the grades are *measured*
(see :mod:`repro.evaluation.comparison`) on probe scenarios, and the
resulting matrix is printed in the paper's row order — including the
"Filtering Algorithm" column, realized as the OpenStack-style
filter-and-weigh scheduler.

Expected shape: greedy/CP/filtering comply with constraints; the plain
EAs do not; the tabu hybrid both complies and scales.
"""

from benchmarks.conftest import paper_algorithms
from repro.baselines import FilterSchedulerAllocator
from repro.evaluation import TABLE2_CRITERIA, capability_matrix, format_table


def test_table2_capability_matrix(benchmark, capsys):
    factories = dict(paper_algorithms())
    factories["filtering"] = lambda: FilterSchedulerAllocator()
    rows = benchmark.pedantic(
        lambda: capability_matrix(factories, seed=0, runs=1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    headers = ["criterion", *(r.algorithm for r in rows)]
    table_rows = [
        [criterion, *(getattr(r, criterion) for r in rows)]
        for criterion in TABLE2_CRITERIA
    ]
    with capsys.disabled():
        print("\n" + format_table(headers, table_rows, title="Table II (measured)"))

    by_name = {r.algorithm: r for r in rows}
    # Paper shape: the non-evolutionary methods respect constraints...
    assert by_name["round_robin"].compliance_with_constraints
    assert by_name["constraint_programming"].compliance_with_constraints
    assert by_name["filtering"].compliance_with_constraints
    # ...the unmodified NSGAs do not...
    assert not by_name["nsga2"].compliance_with_constraints
    assert not by_name["nsga3"].compliance_with_constraints
    # ...and the proposed hybrid does.
    assert by_name["nsga3_tabu"].compliance_with_constraints
