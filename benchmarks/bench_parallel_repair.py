"""Worker-scaling curve of the parallel repair fan-out (the engine bench).

Measures wall-clock for repairing one batch of infeasible genomes —
the dominant per-generation cost of the hybrid at scale — serially and
through :class:`~repro.engine.parallel.ParallelEngine` at increasing
worker counts, asserting byte-identity against the serial result at
every point before reporting any number (a speedup with different
bytes would be worthless).

Results land in ``BENCH_parallel_repair.json`` at the repo root.  The
default size is smoke-scale (CI runs it on every push and fails on any
byte divergence); ``REPRO_BENCH_FULL=1`` runs the paper's largest
800 servers x 1600 VMs point over workers 1/2/4/8.  The >= 2.5x floor
at 4 workers is enforced only on the full size *and* when the host
actually has >= 4 CPUs — ``cpu_count`` is recorded in the JSON so a
1-core container's honest ~1x curve is legible as such, not as a
regression.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_environment, full_sweep_enabled, scenario_for
from repro.engine import CompiledProblem, ParallelEngine
from repro.model.request import Request
from repro.tabu.repair import TabuRepair

#: Enforced at the full size on hosts with enough cores (see module doc).
SPEEDUP_FLOOR_AT_4 = 2.5

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_repair.json"


def _repair_once(scenario, merged, compiled, population, engine, seed=0):
    """One timed population repair; fresh repairer = fresh batch counter."""
    repairer = TabuRepair(
        scenario.infrastructure,
        merged,
        seed=seed,
        compiled=compiled,
        engine=engine,
    )
    t0 = time.perf_counter()
    repaired = repairer(population)
    return repaired, time.perf_counter() - t0


def test_parallel_repair_scaling():
    full = full_sweep_enabled()
    servers, vms = (800, 1600) if full else (60, 120)
    rows = 64 if full else 16
    worker_counts = (1, 2, 4, 8) if full else (1, 2)
    cpu_count = os.cpu_count() or 1

    scenario = scenario_for(servers, vms, seed=3, tightness=0.9)
    merged, _ = Request.concatenate(list(scenario.requests))
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    rng = np.random.default_rng(11)
    population = rng.integers(
        0, scenario.infrastructure.m, size=(rows, merged.n), dtype=np.int64
    )

    serial, serial_elapsed = _repair_once(
        scenario, merged, compiled, population, engine=None
    )

    curve = []
    mismatches = 0
    for n_workers in worker_counts:
        with ParallelEngine(n_workers) as engine:
            repaired, elapsed = _repair_once(
                scenario, merged, compiled, population, engine
            )
            degraded = not engine.available
        identical = serial.tobytes() == repaired.tobytes()
        if not identical:
            mismatches += 1
        curve.append(
            {
                "workers": n_workers,
                "seconds": round(elapsed, 4),
                "speedup": round(serial_elapsed / elapsed, 2),
                "byte_identical": identical,
                "fell_back_to_serial": degraded,
            }
        )

    gate_enforced = full and cpu_count >= 4
    record = {
        "servers": servers,
        "vms": vms,
        "infeasible_rows": rows,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_elapsed, 4),
        "worker_curve": curve,
        "speedup_gate": {
            "enforced": gate_enforced,
            "floor_at_4_workers": SPEEDUP_FLOOR_AT_4,
            "reason": None
            if gate_enforced
            else (
                f"cpu_count={cpu_count} < 4"
                if cpu_count < 4
                else "smoke size (REPRO_BENCH_FULL unset)"
            ),
        },
        "full_size": full,
        "environment": bench_environment(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert mismatches == 0, f"{mismatches} worker counts diverged from serial bytes"

    if gate_enforced:
        at_4 = next(p for p in curve if p["workers"] == 4)
        assert at_4["speedup"] >= SPEEDUP_FLOOR_AT_4, (
            f"repair fan-out only {at_4['speedup']:.1f}x at 4 workers "
            f"(floor {SPEEDUP_FLOOR_AT_4}x, cpu_count={cpu_count})"
        )
