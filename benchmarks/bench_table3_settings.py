"""Table III — NSGA-II and III settings.

The table is reproduced as the library's defaults; the bench verifies
them and measures the cost of one default-budget NSGA-III generation
step at the paper's population size, so changes to the engine's inner
loop show up as regressions here.
"""

import numpy as np

from repro import NSGA3, NSGAConfig, PopulationEvaluator
from repro.evaluation import format_table
from benchmarks.conftest import scenario_for
from repro.model import Request


def test_table3_defaults_match_paper(benchmark, capsys):
    config = benchmark.pedantic(
        NSGAConfig, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        ["populationSize", config.population_size, 100],
        ["Number of evaluations", config.max_evaluations, 10_000],
        ["sbx.rate", config.sbx_rate, 0.70],
        ["sbx.distributionIndex", config.sbx_distribution_index, 15.00],
        ["pm.rate", config.pm_rate, 0.20],
        ["pm.distributionIndex", config.pm_distribution_index, 15.00],
    ]
    with capsys.disabled():
        print(
            "\n"
            + format_table(
                ["parameter", "library default", "paper"], rows,
                title="Table III (defaults)",
            )
        )
    for _, ours, paper in rows:
        assert ours == paper


def test_table3_generation_step_cost(benchmark):
    """One NSGA-III generation at the paper's population size."""
    scenario = scenario_for(40, 80, seed=6)
    merged, _ = Request.concatenate(scenario.requests)
    evaluator = PopulationEvaluator(scenario.infrastructure, merged)
    # Population 100 (paper), two generations' worth of evaluations.
    config = NSGAConfig(population_size=100, max_evaluations=300, seed=0)
    engine = NSGA3(config)

    result = benchmark.pedantic(
        lambda: engine.run(
            PopulationEvaluator(scenario.infrastructure, merged)
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.evaluations <= 300
    assert len(result.population) == 100
