"""Ablation — the four constraint-handling strategies of Section III.

The paper argues: exclusion (method 1) "excludes too many individuals";
the violation penalty "lead[s] to serious increases in response times"
(it needs far more evaluations to reach feasibility, when it does); the
tabu repair (method 2) is the one that works.  This bench runs the same
NSGA-III engine under all four handlers on one medium instance and
reports final violations, rejection rate and wall time.
"""

import pytest

from benchmarks.conftest import BENCH_EA, scenario_for
from repro.ea import (
    ExclusionHandling,
    NoHandling,
    NSGA3,
    PenaltyHandling,
    RepairHandling,
)
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.tabu import TabuRepair

_HANDLERS = ["none", "exclude", "penalty", "repair_tabu"]


def _make_handler(name, scenario, merged):
    if name == "none":
        return NoHandling()
    if name == "exclude":
        return ExclusionHandling()
    if name == "penalty":
        return PenaltyHandling(coefficient=1_000.0)
    repair = TabuRepair(scenario.infrastructure, merged, seed=0)
    return RepairHandling(repair)


@pytest.mark.parametrize("handler_name", _HANDLERS)
def test_ablation_constraint_handling(benchmark, handler_name):
    scenario = scenario_for(24, 48, seed=7, tightness=0.7)
    merged, _ = Request.concatenate(scenario.requests)
    handler = _make_handler(handler_name, scenario, merged)

    def run():
        evaluator = PopulationEvaluator(scenario.infrastructure, merged)
        engine = NSGA3(BENCH_EA, handler=handler)
        return engine.run(evaluator)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["best_violations"] = result.best_violations()
    benchmark.extra_info["feasible_fraction"] = round(
        float(result.population.feasible_mask.mean()), 3
    )
    # The repair strategy must dominate the others on feasibility.
    if handler_name == "repair_tabu":
        assert result.best_violations() == 0
