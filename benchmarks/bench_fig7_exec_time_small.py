"""Figure 7 — average execution time, few resources.

Paper claim: on small problems the Round Robin and constraint-based
algorithms are *faster* than the evolutionary approaches ("2 to 3 times
slower; 5 seconds versus 1.5 seconds" on the authors' NUC); NSGA-III
with tabu search pays the repair overhead.

The pytest-benchmark table is the figure: one row per
(algorithm, size), sorted by mean time.
"""

import pytest

from benchmarks.conftest import paper_algorithms, scenario_for

SIZES = [(10, 20), (20, 40), (40, 80)]


@pytest.mark.parametrize("servers,vms", SIZES, ids=[f"{s}x{v}" for s, v in SIZES])
@pytest.mark.parametrize("algo", sorted(paper_algorithms()))
def test_fig7_execution_time(benchmark, algo, servers, vms):
    scenario = scenario_for(servers, vms, seed=1)
    factory = paper_algorithms()[algo]

    def run():
        return factory().allocate(scenario.infrastructure, scenario.requests)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["rejection_rate"] = round(outcome.rejection_rate, 3)
    benchmark.extra_info["violations"] = outcome.violations
    assert outcome.assignment.shape == (scenario.n_vms,)
