"""Shared machinery for the figure/table benchmarks.

Every bench regenerates one artifact of the paper's Section IV.  The
pytest-benchmark table gives the execution-time figures directly
(Figures 7-8); the quality figures (9-11) additionally record their
metric in ``extra_info`` columns and print a text series table.

Budgets: the paper runs 100 scenarios x 10 000 evaluations on an Intel
NUC; the default bench budget is scaled down (documented per experiment
in EXPERIMENTS.md) so the whole harness finishes in minutes of pure
Python.  Set ``REPRO_BENCH_FULL=1`` to include the paper's largest
sizes (800 servers / 1600 VMs) in the Figure 8 sweep.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    CPAllocator,
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
    SearchLimits,
)

#: Reduced EA budget for the benches (paper: pop 100 / 10 000 evals).
BENCH_EA = NSGAConfig(population_size=20, max_evaluations=600, seed=0)

#: CP budget per request; generous enough for the bench sizes.
BENCH_CP_LIMITS = SearchLimits(max_nodes=20_000, time_limit=2.0)


def paper_algorithms() -> dict:
    """The six algorithms of Section IV, bench-budgeted."""
    return {
        "round_robin": lambda: RoundRobinAllocator(),
        "constraint_programming": lambda: CPAllocator(
            optimize=False, limits=BENCH_CP_LIMITS
        ),
        "nsga2": lambda: NSGA2Allocator(BENCH_EA),
        "nsga3": lambda: NSGA3Allocator(BENCH_EA),
        "nsga3_cp": lambda: NSGA3CPAllocator(
            BENCH_EA, repair_limits=SearchLimits(max_nodes=500, time_limit=0.1)
        ),
        "nsga3_tabu": lambda: NSGA3TabuAllocator(BENCH_EA),
    }


def scenario_for(servers: int, vms: int, seed: int = 0, tightness: float = 0.65):
    """One deterministic scenario at a sweep point."""
    spec = ScenarioSpec(
        servers=servers,
        datacenters=2 if servers < 100 else 4,
        vms=vms,
        tightness=tightness,
    )
    return ScenarioGenerator(spec, seed=seed).generate()


def full_sweep_enabled() -> bool:
    """Whether the paper-scale Figure 8 sizes are included."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_gate_enabled() -> bool:
    """Whether benches enforce regression gates vs the committed JSON."""
    return os.environ.get("REPRO_BENCH_GATE", "0") == "1"


def bench_environment() -> dict:
    """Provenance block stamped into every bench artifact.

    A BENCH json is only comparable to a rerun on a like-for-like
    host: the core count, the kernel backend and the numba version all
    move the numbers, so every artifact records them instead of
    leaving readers to guess why two files disagree.
    """
    import platform

    import numpy as np

    from repro.engine.kernels import active_kernel
    from repro.engine.kernels.numba_backend import HAVE_NUMBA, NUMBA_VERSION

    return {
        "cpu_count": os.cpu_count() or 1,
        "kernel_backend": active_kernel().name,
        "numba_version": NUMBA_VERSION if HAVE_NUMBA else None,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
    }


@pytest.fixture
def algorithms():
    return paper_algorithms()
