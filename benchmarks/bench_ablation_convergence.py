"""Ablation — convergence speed of the constraint-handling strategies.

The paper's strongest process claim: the violation-penalty approach
"happened to lead to serious increases in response times whereas our
primary goal was to obtain a response in a very short timeframe
(<2mn).  In some challenging cases, the algorithm would result in no
solution found yet even after having computed for a whole week."

This bench measures *evaluations-to-first-feasible* under each
strategy on a constrained instance.  Expected: the tabu-repair run is
feasible essentially immediately (the repair manufactures feasibility),
while penalty/none/exclude need far more budget — or never get there
within it, reproducing the paper's "no solution found" experience at
bench scale.
"""

import pytest

from benchmarks.conftest import scenario_for
from repro.ea import (
    ExclusionHandling,
    NoHandling,
    NSGA3,
    NSGAConfig,
    PenaltyHandling,
    RepairHandling,
)
from repro.evaluation import convergence_summary, evaluations_to_feasible
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.tabu import TabuRepair

_CONFIG = NSGAConfig(population_size=20, max_evaluations=1200, seed=4)
_STRATEGIES = ["repair_tabu", "penalty", "exclude", "none"]


def _handler(name, scenario, merged):
    if name == "repair_tabu":
        return RepairHandling(
            TabuRepair(scenario.infrastructure, merged, seed=0)
        )
    if name == "penalty":
        return PenaltyHandling(coefficient=1_000.0)
    if name == "exclude":
        return ExclusionHandling()
    return NoHandling()


@pytest.mark.parametrize("strategy", _STRATEGIES)
def test_ablation_convergence_to_feasibility(benchmark, strategy, capsys):
    scenario = scenario_for(24, 48, seed=12, tightness=0.7)
    merged, _ = Request.concatenate(scenario.requests)
    handler = _handler(strategy, scenario, merged)

    def run():
        evaluator = PopulationEvaluator(scenario.infrastructure, merged)
        engine = NSGA3(_CONFIG, handler=handler, track_history=True)
        return engine.run(evaluator)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    summary = convergence_summary(result)
    to_feasible = summary["evals_to_feasible"]
    benchmark.extra_info["evals_to_feasible"] = to_feasible
    benchmark.extra_info["final_feasible_fraction"] = summary[
        "final_feasible_fraction"
    ]

    if strategy == "repair_tabu":
        # The repair makes the *initial* population feasible.
        assert to_feasible == _CONFIG.population_size
    else:
        # The paper's complaint: without repair, feasibility arrives
        # late or never within the budget.
        assert to_feasible is None or to_feasible >= _CONFIG.population_size
