"""Operational bench — allocators under a continuous churn stream.

The figure benches measure one window; a live platform runs hundreds.
This bench drives each allocator with the same Poisson arrival /
lognormal lifetime / failure-injected trace and reports end-to-end
acceptance and total allocation time — the operational view of the
Figure 7-9 trade-offs (fast-but-greedy vs slow-but-thorough), on the
paper's future-work event model.
"""

import pytest

from benchmarks.conftest import BENCH_EA
from repro.baselines import (
    BestFitAllocator,
    FilterSchedulerAllocator,
    RoundRobinAllocator,
)
from repro.hybrid import NSGA3TabuAllocator
from repro.scheduler import TimeWindowScheduler, summarize_reports
from repro.workloads import (
    ScenarioGenerator,
    ScenarioSpec,
    TraceGenerator,
    TraceSpec,
)

_ALLOCATORS = {
    "round_robin": lambda: RoundRobinAllocator(),
    "best_fit": lambda: BestFitAllocator(),
    "filter_scheduler": lambda: FilterSchedulerAllocator(),
    "nsga3_tabu": lambda: NSGA3TabuAllocator(BENCH_EA),
}


@pytest.mark.parametrize("name", sorted(_ALLOCATORS))
def test_scheduler_stream(benchmark, name):
    scenario_spec = ScenarioSpec(
        servers=24, datacenters=2, vms=60, tightness=0.55
    )
    estate = ScenarioGenerator(scenario_spec, seed=14).generate().infrastructure
    trace, _ = TraceGenerator(
        TraceSpec(
            horizon=10.0,
            arrival_rate=2.5,
            mean_lifetime=5.0,
            failure_rate=0.2,
        ),
        scenario_spec,
        seed=14,
    ).generate()

    def run():
        scheduler = TimeWindowScheduler(estate, _ALLOCATORS[name]())
        trace.apply_to(scheduler)
        reports = scheduler.run(max_windows=64)
        scheduler.state.verify_consistency()
        return summarize_reports(reports)

    summary = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["accepted"] = summary.accepted
    benchmark.extra_info["rejected"] = summary.rejected
    benchmark.extra_info["displaced"] = summary.displaced
    benchmark.extra_info["allocation_time"] = round(
        summary.total_allocation_time, 3
    )
    assert summary.arrivals == len(trace.arrivals)
    assert summary.failures == len(trace.failures)
