"""Shared fixtures: small, fully understood problem instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import AttributeSchema, Infrastructure, PlacementGroup, Request
from repro.types import PlacementRule


@pytest.fixture
def small_infra() -> Infrastructure:
    """8 heterogeneous servers in 2 datacenters (4 + 4)."""
    return Infrastructure(
        capacity=np.array(
            [
                [16.0, 64.0, 500.0],
                [16.0, 64.0, 500.0],
                [32.0, 128.0, 1000.0],
                [32.0, 128.0, 1000.0],
                [16.0, 64.0, 500.0],
                [16.0, 64.0, 500.0],
                [32.0, 128.0, 1000.0],
                [32.0, 128.0, 1000.0],
            ]
        ),
        capacity_factor=np.full((8, 3), 0.95),
        operating_cost=np.array([1.0, 1.0, 2.0, 2.0, 1.5, 1.5, 3.0, 3.0]),
        usage_cost=np.array([0.5, 0.5, 1.0, 1.0, 0.75, 0.75, 1.5, 1.5]),
        max_load=np.full((8, 3), 0.8),
        max_qos=np.full((8, 3), 0.99),
        server_datacenter=np.array([0, 0, 0, 0, 1, 1, 1, 1]),
    )


@pytest.fixture
def small_request() -> Request:
    """6 VMs with one rule of each flavour family."""
    return Request(
        demand=np.array(
            [
                [2.0, 8.0, 50.0],
                [2.0, 8.0, 50.0],
                [4.0, 16.0, 100.0],
                [4.0, 16.0, 100.0],
                [1.0, 4.0, 25.0],
                [1.0, 4.0, 25.0],
            ]
        ),
        qos_guarantee=np.full(6, 0.9),
        downtime_cost=np.full(6, 5.0),
        migration_cost=np.full(6, 2.0),
        groups=(
            PlacementGroup(PlacementRule.SAME_SERVER, (0, 1)),
            PlacementGroup(PlacementRule.DIFFERENT_SERVERS, (2, 3)),
        ),
    )


@pytest.fixture
def tiny_infra() -> Infrastructure:
    """2 identical servers in one datacenter — for hand-checkable math."""
    return Infrastructure(
        capacity=np.array([[10.0, 10.0], [10.0, 10.0]]),
        capacity_factor=np.ones((2, 2)),
        operating_cost=np.array([1.0, 2.0]),
        usage_cost=np.array([0.5, 0.5]),
        max_load=np.full((2, 2), 0.5),
        max_qos=np.full((2, 2), 0.9),
        server_datacenter=np.array([0, 0]),
        schema=AttributeSchema(names=("cpu", "ram")),
    )


@pytest.fixture
def tiny_request(tiny_infra) -> Request:
    """2 VMs on the tiny infra, no groups."""
    return Request(
        demand=np.array([[4.0, 4.0], [4.0, 4.0]]),
        qos_guarantee=np.array([0.8, 0.8]),
        downtime_cost=np.array([10.0, 10.0]),
        migration_cost=np.array([1.0, 3.0]),
        schema=tiny_infra.schema,
    )
