"""Acceptance test for ISSUE's observability criterion: one
examples/quickstart.py run with a JSONL sink emits a
GenerationCompleted event per NSGA-III generation and a WindowClosed
event per scheduler window."""

import json
import subprocess
import sys
from collections import defaultdict
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
QUICKSTART = REPO_ROOT / "examples" / "quickstart.py"


@pytest.fixture(scope="module")
def events(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "events.jsonl"
    result = subprocess.run(
        [
            sys.executable,
            str(QUICKSTART),
            "--telemetry",
            f"jsonl:{path}",
            "--population",
            "12",
            "--evaluations",
            "240",
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestQuickstartTelemetry:
    def test_stream_is_json_with_timestamps(self, events):
        assert events
        for payload in events:
            assert "event" in payload
            assert isinstance(payload["ts"], float)

    def test_generation_completed_per_generation(self, events):
        """Each NSGA-III run contributes one contiguous 0..G block of
        generation events (quickstart part 1, plus one run per scheduler
        window that has arrivals)."""
        generations = [
            e for e in events if e["event"] == "generation_completed"
        ]
        assert generations
        runs = []
        for event in generations:
            assert event["algorithm"] == "nsga3"
            if event["generation"] == 0:
                runs.append([])
            runs[-1].append(event["generation"])
        assert len(runs) >= 3  # main allocation + >= 2 scheduler batches
        for run in runs:
            assert run == list(range(len(run)))

    def test_window_closed_per_window(self, events):
        windows = [e for e in events if e["event"] == "window_closed"]
        assert [e["window_index"] for e in windows] == [0, 1, 2]
        assert sum(e["arrivals"] for e in windows) == 3  # 3 tenants submitted
        assert sum(e["departures"] for e in windows) == 1  # batch-job at 2.5
        for event in windows:
            assert event["end_time"] > event["start_time"]

    def test_event_vocabulary_is_known(self, events):
        known = {
            "generation_completed",
            "repair_invoked",
            "tabu_iteration",
            "window_closed",
            "request_rejected",
            "migration_planned",
        }
        counts = defaultdict(int)
        for event in events:
            counts[event["event"]] += 1
        assert set(counts) <= known
