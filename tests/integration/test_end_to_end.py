"""Integration tests: all six paper algorithms on generated scenarios,
with cross-solver agreement checks."""

import numpy as np
import pytest

from repro import (
    CPAllocator,
    FirstFitAllocator,
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
    SearchLimits,
    solve_ilp,
)
from repro.cp import CPSolver
from repro.model import Request

_FAST = NSGAConfig(population_size=20, max_evaluations=600, seed=0)

PAPER_SIX = [
    ("round_robin", lambda: RoundRobinAllocator()),
    ("constraint_programming", lambda: CPAllocator(optimize=False)),
    ("nsga2", lambda: NSGA2Allocator(_FAST)),
    ("nsga3", lambda: NSGA3Allocator(_FAST)),
    (
        "nsga3_cp",
        lambda: NSGA3CPAllocator(
            _FAST, repair_limits=SearchLimits(max_nodes=500, time_limit=0.1)
        ),
    ),
    ("nsga3_tabu", lambda: NSGA3TabuAllocator(_FAST)),
]


@pytest.fixture(scope="module")
def scenario():
    spec = ScenarioSpec(servers=20, datacenters=2, vms=40, tightness=0.55)
    return ScenarioGenerator(spec, seed=9).generate()


class TestAllSixAlgorithms:
    @pytest.mark.parametrize("name,factory", PAPER_SIX)
    def test_produces_valid_outcome(self, name, factory, scenario):
        outcome = factory().allocate(scenario.infrastructure, scenario.requests)
        assert outcome.algorithm == name
        assert outcome.assignment.shape == (scenario.n_vms,)
        assert 0.0 <= outcome.rejection_rate <= 1.0
        assert outcome.violations >= 0
        assert outcome.elapsed >= 0.0
        assert np.all(outcome.objectives >= 0.0)

    @pytest.mark.parametrize(
        "name,factory",
        [p for p in PAPER_SIX if p[0] in ("round_robin", "constraint_programming")],
    )
    def test_non_ea_never_violates(self, name, factory, scenario):
        outcome = factory().allocate(scenario.infrastructure, scenario.requests)
        assert outcome.violations == 0

    def test_tabu_hybrid_beats_unmodified_on_violations(self, scenario):
        tabu = NSGA3TabuAllocator(_FAST).allocate(
            scenario.infrastructure, scenario.requests
        )
        plain = NSGA3Allocator(_FAST).allocate(
            scenario.infrastructure, scenario.requests
        )
        assert tabu.violations <= plain.violations

    def test_tabu_hybrid_feasible_on_comfortable_instance(self, scenario):
        outcome = NSGA3TabuAllocator(_FAST).allocate(
            scenario.infrastructure, scenario.requests
        )
        assert outcome.violations == 0


class TestExactSolverAgreement:
    """CP and ILP are independent complete methods: they must agree."""

    @pytest.mark.parametrize("seed", range(4))
    def test_same_optimal_cost(self, seed):
        spec = ScenarioSpec(
            servers=6, datacenters=2, vms=8, tightness=0.5, max_request_size=4
        )
        scenario = ScenarioGenerator(spec, seed=seed).generate()
        merged, _ = Request.concatenate(scenario.requests)
        ilp = solve_ilp(scenario.infrastructure, merged, time_limit=60)
        cp = CPSolver(
            scenario.infrastructure,
            merged,
            limits=SearchLimits(max_nodes=500_000, time_limit=60),
        ).optimize()
        assert ilp.optimal and cp.proved and cp.found
        assert ilp.cost == pytest.approx(cp.cost, rel=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_same_feasibility_verdict(self, seed):
        spec = ScenarioSpec(
            servers=4, datacenters=2, vms=10, tightness=1.4, max_request_size=5
        )
        scenario = ScenarioGenerator(spec, seed=100 + seed).generate()
        merged, _ = Request.concatenate(scenario.requests)
        ilp = solve_ilp(scenario.infrastructure, merged, time_limit=60)
        cp = CPSolver(
            scenario.infrastructure,
            merged,
            limits=SearchLimits(max_nodes=500_000, time_limit=60),
        ).find_feasible()
        if not cp.proved:
            pytest.skip("CP budget exhausted; verdicts not comparable")
        assert cp.found == (not ilp.infeasible)


class TestHeuristicsVsOptimal:
    def test_cp_optimize_not_beaten_by_heuristics(self):
        spec = ScenarioSpec(servers=8, datacenters=2, vms=12, tightness=0.5)
        scenario = ScenarioGenerator(spec, seed=3).generate()
        optimal = CPAllocator(optimize=True).allocate(
            scenario.infrastructure, scenario.requests
        )
        if optimal.rejection_rate > 0:
            pytest.skip("instance not fully placeable; cost not comparable")
        for factory in (FirstFitAllocator, RoundRobinAllocator):
            heuristic = factory().allocate(
                scenario.infrastructure, scenario.requests
            )
            if heuristic.rejection_rate == 0:
                assert (
                    optimal.provider_cost <= heuristic.provider_cost + 1e-6
                ), factory.__name__


class TestScale:
    def test_tabu_hybrid_feasible_at_medium_scale(self):
        """Even at reduced budget the hybrid must return a violation-free
        placement at 100x200 (the final repair pass guarantees the last
        mile that the evolutionary budget alone may leave undone)."""
        spec = ScenarioSpec(servers=100, datacenters=4, vms=200, tightness=0.65)
        scenario = ScenarioGenerator(spec, seed=2).generate()
        outcome = NSGA3TabuAllocator(_FAST).allocate(
            scenario.infrastructure, scenario.requests
        )
        assert outcome.violations == 0
