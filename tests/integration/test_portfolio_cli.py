"""CLI-level portfolio checks: SIGINT mid-race + ``repro resume``.

The unit layer proves the composite checkpoint resumes byte-identically
via the in-process shutdown flag; this test proves the same story the
way an operator hits it — a real SIGINT delivered to a real
``python -m repro compare --allocator portfolio`` process, then
``python -m repro resume DIR`` replaying the manifest argv.  The
resumed run's decision columns must match an uninterrupted reference
run (wall-clock column excluded: elapsed time is legitimately
different).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


_COMPARE_ARGS = [
    "compare",
    "--allocator",
    "portfolio",
    "--servers",
    "8",
    "--vms",
    "16",
    "--population",
    "12",
    "--evaluations",
    "900",
    "--seed",
    "11",
]


def _portfolio_row(stdout: str) -> list[str]:
    for line in stdout.splitlines():
        if line.startswith("portfolio"):
            cells = line.split()
            return [cells[0], *cells[2:]]  # drop the wall-clock column
    raise AssertionError(f"no portfolio row in output:\n{stdout}")


class TestSigintResume:
    def test_sigint_then_resume_matches_uninterrupted(self, tmp_path):
        reference = subprocess.run(
            [sys.executable, "-m", "repro", *_COMPARE_ARGS],
            capture_output=True,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert reference.returncode == 0, reference.stderr

        directory = str(tmp_path / "ckpt")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                *_COMPARE_ARGS,
                "--checkpoint-dir",
                directory,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
        )
        time.sleep(3.0)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=300)
        # Graceful unwind: the flag is raised, the race snapshots at its
        # epoch boundary and compare still reports the incumbent.
        assert proc.returncode == 0, stderr

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "resume", directory],
            capture_output=True,
            text=True,
            env=_env(),
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming campaign" in resumed.stdout
        assert _portfolio_row(resumed.stdout) == _portfolio_row(
            reference.stdout
        )
