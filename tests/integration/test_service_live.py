"""Integration tests: the allocation service over real sockets.

Two layers: in-process (boot the asyncio app, talk HTTP through the
loadgen client, drive a reoptimize cycle) and out-of-process (spawn
``python -m repro serve`` as a subprocess, replay traffic, SIGTERM it,
and resume from the checkpoint it flushed — the acceptance demo)."""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.model.request import Request
from repro.serialization import request_to_dict
from repro.service import LoadGenerator, ServiceApp, ServiceConfig
from repro.service.loadgen import _Client
from repro.verify import check_service_conformance

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestInProcess:
    def _boot(self, **overrides):
        config = ServiceConfig(
            port=0,
            servers=10,
            vms=32,
            seed=7,
            population=12,
            evaluations=144,
            window_every=3600.0,
            **overrides,
        )
        return ServiceApp(config)

    async def _with_app(self, app, body):
        serve_task = asyncio.create_task(app.serve())
        try:
            while app.api is None or app.api.port == 0:
                await asyncio.sleep(0.02)
            return await body(app.api.port)
        finally:
            app.shutdown()
            await serve_task

    def test_http_round_trips(self):
        app = self._boot()

        async def body(port):
            client = _Client("127.0.0.1", port)
            try:
                status, health = await client.request("GET", "/healthz")
                assert (status, health["status"]) == (200, "ok")

                body_request = Request(
                    demand=np.array([[1.0, 2.0, 10.0]]),
                    qos_guarantee=np.array([0.9]),
                    downtime_cost=np.array([1.0]),
                    migration_cost=np.array([1.0]),
                )
                request = {
                    "key": "t1",
                    "request": request_to_dict(body_request),
                }
                status, decision = await client.request(
                    "POST", "/requests", request
                )
                assert status == 200 and decision["accepted"]
                assert decision["placement"]

                status, dup = await client.request("POST", "/requests", request)
                assert status == 409 and dup["reason"] == "duplicate_key"

                status, placements = await client.request("GET", "/placements")
                assert status == 200 and "t1" in placements["residents"]

                server = decision["placement"][0]
                status, drain = await client.request(
                    "POST", f"/servers/{server}/drain"
                )
                assert status == 200 and "t1" in drain["displaced"]
                status, _ = await client.request(
                    "POST", f"/servers/{server}/recover"
                )
                assert status == 200

                status, gone = await client.request("DELETE", "/requests/nope")
                assert status == 404 and gone["reason"] == "unknown_key"

                status, metrics = await client.request("GET", "/metrics")
                assert status == 200
                counters = metrics["metrics"]["counters"]
                assert any(
                    name.startswith("service.admission") for name in counters
                )

                status, bad = await client.request("GET", "/no-such-route")
                assert status == 404 and "error" in bad
            finally:
                await client.close()

        asyncio.run(self._with_app(app, body))

    def test_reoptimize_endpoint_runs_cycle(self):
        app = self._boot()

        async def body(port):
            generator = LoadGenerator("127.0.0.1", port, rate=300.0, seed=7)
            load = await generator.run(max_events=60)
            assert load.ok
            client = _Client("127.0.0.1", port)
            try:
                status, result = await client.request("POST", "/reoptimize")
                assert status == 200 and result["ran"]
                cycle = result["cycle"]
                if cycle["applied"]:
                    assert cycle["hv_after"] >= cycle["hv_before"]
                else:
                    assert cycle["reason"] in (
                        "non_improving",
                        "stale",
                        "infeasible",
                    )
            finally:
                await client.close()

        asyncio.run(self._with_app(app, body))

    def test_token_bucket_throttles(self):
        app = self._boot(rate=1.0, burst=1)

        async def body(port):
            generator = LoadGenerator("127.0.0.1", port, rate=500.0, seed=7)
            load = await generator.run(max_events=40)
            assert load.ok
            return load

        load = asyncio.run(self._with_app(app, body))
        assert load.throttled > 0


@pytest.mark.slow
class TestSubprocessLifecycle:
    def _spawn(self, checkpoint_dir, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--servers",
                "10",
                "--vms",
                "32",
                "--seed",
                "7",
                "--checkpoint-dir",
                checkpoint_dir,
                "--window-every",
                "3600",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"no listening banner in {line!r}"
        return process, int(match.group(1))

    def test_sigterm_checkpoints_and_resume_restores(self, tmp_path):
        checkpoint_dir = str(tmp_path / "state")
        process, port = self._spawn(checkpoint_dir)
        try:
            generator = LoadGenerator("127.0.0.1", port, rate=300.0, seed=7)
            load = asyncio.run(generator.run(max_events=200))
            assert load.ok, f"5xx during replay: {load.statuses}"
            assert load.requests == 200

            async def placements(p):
                client = _Client("127.0.0.1", p)
                try:
                    _, body = await client.request("GET", "/placements")
                finally:
                    await client.close()
                return body

            live = asyncio.run(placements(port))

            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=60)
            assert rc == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        # The flushed checkpoint replays cleanly through the oracle...
        report = check_service_conformance(checkpoint_dir)
        assert report.ok, report.format()

        # ...and a resumed serve restores residents byte-identically.
        process2, port2 = self._spawn(checkpoint_dir, extra=("--resume",))
        try:
            async def placements(p):
                client = _Client("127.0.0.1", p)
                try:
                    _, body = await client.request("GET", "/placements")
                finally:
                    await client.close()
                return body

            resumed = asyncio.run(placements(port2))
            assert resumed["residents"] == live["residents"]
            assert resumed["epoch"] == live["epoch"]
            process2.send_signal(signal.SIGTERM)
            assert process2.wait(timeout=60) == 0
        finally:
            if process2.poll() is None:
                process2.kill()
                process2.wait()
