"""Integration tests: dynamic scenario playback through the live service.

``repro serve --scenario NAME`` compiles a registered dynamic scenario
and plays its event stream through live admission, window by window.
These tests boot the asyncio app in-process, wait for playback to
finish, and then prove the checkpointed admission log replays
byte-identically through the batch oracle
(``verify --check-service``) — the dynamic scenarios and the service
are the same machine.
"""

from __future__ import annotations

import asyncio

from repro.service import ServiceApp, ServiceConfig
from repro.service.loadgen import _Client
from repro.verify import check_service_conformance
from repro.workloads.scenarios import compile_scenario


def _play(tmp_path, name: str, seed: int) -> str:
    checkpoint_dir = str(tmp_path / "state")
    app = ServiceApp(
        ServiceConfig(
            port=0,
            scenario=name,
            seed=seed,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=3,
            window_every=3600.0,
        )
    )

    async def body():
        serve_task = asyncio.create_task(app.serve())
        try:
            await asyncio.wait_for(app.playback_done.wait(), timeout=120)
        finally:
            app.shutdown()
            await serve_task

    asyncio.run(body())
    return checkpoint_dir


def test_scenario_playback_replays_byte_identically(tmp_path):
    seed = 4
    checkpoint_dir = _play(tmp_path, "failure_storm", seed)
    report = check_service_conformance(checkpoint_dir, seed=seed)
    assert report.ok, report.format()


def test_drain_scenario_round_trips_through_admission_log(tmp_path):
    seed = 1
    checkpoint_dir = _play(tmp_path, "maintenance_drain", seed)
    report = check_service_conformance(checkpoint_dir, seed=seed)
    assert report.ok, report.format()


def test_playback_covers_the_compiled_stream(tmp_path):
    seed = 2
    name = "steady_churn"
    compiled = compile_scenario(name, seed=seed)
    app = ServiceApp(
        ServiceConfig(port=0, scenario=name, seed=seed, window_every=3600.0)
    )

    async def body():
        serve_task = asyncio.create_task(app.serve())
        try:
            while app.api is None or app.api.port == 0:
                await asyncio.sleep(0.02)
            await asyncio.wait_for(app.playback_done.wait(), timeout=120)
            client = _Client("127.0.0.1", app.api.port)
            try:
                _, placements = await client.request("GET", "/placements")
            finally:
                await client.close()
            return placements
        finally:
            app.shutdown()
            await serve_task

    placements = asyncio.run(body())
    # Every resident the service ended with is a key the compiled
    # stream introduced, and at least one window of churn happened.
    keys = {event.key for event in compiled.arrivals}
    assert set(placements["residents"]) <= keys
    assert placements["epoch"] >= 1
