"""Kill-and-resume differential checks across the stack.

The acceptance bar of the checkpoint subsystem: a run killed at a
checkpoint boundary and resumed from disk finishes byte-identically to
the uninterrupted run — at the engine layer, through the allocator,
through the scheduler, and through the sweep runner's cell journal.
"""

import numpy as np
import pytest

from repro import CheckpointManager, NSGAConfig, NSGA3TabuAllocator
from repro.baselines.round_robin import RoundRobinAllocator
from repro.evaluation.runner import ExperimentRunner
from repro.runtime.signals import clear_shutdown, request_shutdown
from repro.scheduler.window import TimeWindowScheduler
from repro.verify import check_resume_determinism
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec


class TestKillAndResume:
    def test_serial_byte_identity(self):
        report = check_resume_determinism(
            worker_counts=(0,), max_evaluations=120
        )
        assert report.ok, report.format()
        assert report.resumed_generations  # the resume actually happened

    def test_parallel_byte_identity(self):
        report = check_resume_determinism(
            worker_counts=(2,), max_evaluations=120
        )
        assert report.ok, report.format()
        assert report.resumed_generations

    def test_truncated_budget_resumes_into_full_budget(self, tmp_path):
        """The trajectory key excludes stopping criteria by design."""
        spec = ScenarioSpec(servers=6, datacenters=2, vms=10, tightness=0.8)
        scenario = ScenarioGenerator(spec, seed=5).generate()

        def outcome_for(budget, directory):
            config = NSGAConfig(
                population_size=10,
                max_evaluations=budget,
                reference_point_divisions=4,
                checkpoint_dir=directory,
                checkpoint_every=2,
                seed=5,
            )
            allocator = NSGA3TabuAllocator(config=config)
            return allocator.allocate(scenario.infrastructure, scenario.requests)

        baseline = outcome_for(120, None)
        directory = str(tmp_path / "ckpt")
        killed = outcome_for(60, directory)
        assert "resumed_from" not in killed.extra
        resumed = outcome_for(120, directory)
        assert resumed.extra["resumed_from"] >= 2
        assert resumed.assignment.tobytes() == baseline.assignment.tobytes()
        assert resumed.objectives.tobytes() == baseline.objectives.tobytes()
        assert resumed.evaluations == baseline.evaluations


class TestSchedulerResume:
    @staticmethod
    def _feed(scheduler, scenario):
        for index, request in enumerate(scenario.requests[:6]):
            scheduler.submit(f"r{index}", request, at=0.8 * index)
        scheduler.schedule_departure("r0", at=2.4)
        scheduler.schedule_failure(1, at=1.2)
        scheduler.schedule_recovery(1, at=3.6)

    def test_snapshot_restores_byte_identical_trajectory(self, tmp_path):
        spec = ScenarioSpec(servers=6, datacenters=2, vms=14, tightness=0.5)
        scenario = ScenarioGenerator(spec, seed=11).generate()
        manager = CheckpointManager(tmp_path)
        scheduler = TimeWindowScheduler(
            scenario.infrastructure,
            RoundRobinAllocator(),
            window_length=1.0,
            checkpoint_manager=manager,
        )
        self._feed(scheduler, scenario)
        scheduler.run_window()
        scheduler.run_window()

        resumed = TimeWindowScheduler.resume(
            scenario.infrastructure, RoundRobinAllocator(), manager
        )
        assert resumed.clock == scheduler.clock
        assert resumed.failed_servers == scheduler.failed_servers
        assert resumed.state.tenants() == scheduler.state.tenants()
        assert (
            resumed.state.committed_usage.tobytes()
            == scheduler.state.committed_usage.tobytes()
        )
        for _ in range(3):
            original = scheduler.run_window()
            replayed = resumed.run_window()
            assert replayed.accepted == original.accepted
            assert replayed.rejected == original.rejected
            assert replayed.departures == original.departures
            assert replayed.failures == original.failures
            assert replayed.recoveries == original.recoveries
            if original.outcome is not None:
                assert (
                    replayed.outcome.assignment.tobytes()
                    == original.outcome.assignment.tobytes()
                )
        assert (
            resumed.state.committed_usage.tobytes()
            == scheduler.state.committed_usage.tobytes()
        )
        resumed.state.verify_consistency()

    def test_resume_requires_snapshot(self, tmp_path):
        from repro.errors import CheckpointError

        spec = ScenarioSpec(servers=4, datacenters=1, vms=6, tightness=0.5)
        scenario = ScenarioGenerator(spec, seed=0).generate()
        with pytest.raises(CheckpointError):
            TimeWindowScheduler.resume(
                scenario.infrastructure,
                RoundRobinAllocator(),
                CheckpointManager(tmp_path),
            )


class TestSweepJournalResume:
    SPECS = [ScenarioSpec(servers=5, datacenters=1, vms=8, tightness=0.5)]

    @staticmethod
    def _signature(result):
        return [
            {k: v for k, v in record.__dict__.items() if k != "elapsed"}
            for record in result.records
        ]

    def test_journal_resume_reproduces_full_sweep(self, tmp_path):
        runner = ExperimentRunner(
            {"rr": RoundRobinAllocator}, runs=3, seed=2
        )
        baseline = runner.run_sweep(self.SPECS)
        first = runner.run_sweep(self.SPECS, checkpoint_dir=tmp_path)
        assert self._signature(first) == self._signature(baseline)

        # Simulate a kill after cell 1 plus a torn final journal line.
        journal = tmp_path / "cells.jsonl"
        lines = journal.read_text().splitlines()
        journal.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        second = runner.run_sweep(self.SPECS, checkpoint_dir=tmp_path)
        assert self._signature(second) == self._signature(baseline)
        assert len(journal.read_text().splitlines()) == 3
        # The journaled cell keeps its original elapsed reading.
        assert second.records[0].elapsed == first.records[0].elapsed

    def test_shutdown_request_interrupts_between_cells(self, tmp_path):
        clear_shutdown()
        runner = ExperimentRunner(
            {"rr": RoundRobinAllocator}, runs=2, seed=2
        )
        try:
            request_shutdown()
            result = runner.run_sweep(self.SPECS, checkpoint_dir=tmp_path)
        finally:
            clear_shutdown()
        assert result.interrupted
        assert result.records == []
        resumed = runner.run_sweep(self.SPECS, checkpoint_dir=tmp_path)
        assert not resumed.interrupted
        assert len(resumed.records) == 2
