"""Integration test: a full tenant lifecycle through the time-window
scheduler with the paper's hybrid allocator, including reconfiguration."""

import numpy as np
import pytest

from repro import (
    NSGA3TabuAllocator,
    NSGAConfig,
    ScenarioGenerator,
    ScenarioSpec,
    TimeWindowScheduler,
)
from repro.baselines import BestFitAllocator

_FAST = NSGAConfig(population_size=20, max_evaluations=400, seed=5)


@pytest.fixture(scope="module")
def scenario():
    spec = ScenarioSpec(servers=16, datacenters=2, vms=48, tightness=0.5)
    return ScenarioGenerator(spec, seed=21).generate()


class TestLifecycleWithHybridAllocator:
    def test_arrivals_departures_reoptimize(self, scenario):
        scheduler = TimeWindowScheduler(
            scenario.infrastructure,
            NSGA3TabuAllocator(_FAST),
            window_length=1.0,
        )
        # Stagger arrivals over three windows; half the tenants leave.
        for i, request in enumerate(scenario.requests):
            scheduler.submit(f"r{i}", request, at=float(i % 3))
            if i % 2 == 0:
                scheduler.schedule_departure(f"r{i}", at=4.0)
        reports = scheduler.run(max_windows=10)
        scheduler.state.verify_consistency()

        accepted = [k for r in reports for k in r.accepted]
        assert accepted  # at 50% tightness most requests must land
        total = sum(len(r.accepted) + len(r.rejected) for r in reports)
        assert total == scenario.n_requests

        # Reconfiguration: migration plan must be consistent and the
        # platform must stay consistent whether or not it was applied.
        result = scheduler.reoptimize(BestFitAllocator())
        if result is not None:
            outcome, plan = result
            assert plan.total_cost >= 0.0
            scheduler.state.verify_consistency()

    def test_committed_capacity_never_negative(self, scenario):
        scheduler = TimeWindowScheduler(
            scenario.infrastructure, BestFitAllocator(), window_length=1.0
        )
        rng = np.random.default_rng(0)
        for i, request in enumerate(scenario.requests):
            at = float(rng.integers(0, 5))
            scheduler.submit(f"r{i}", request, at=at)
            scheduler.schedule_departure(f"r{i}", at=at + float(rng.integers(1, 4)))
        scheduler.run(max_windows=20)
        assert np.all(scheduler.state.committed_usage >= -1e-9)
        residual = scheduler.state.residual_capacity
        assert np.all(residual <= scenario.infrastructure.effective_capacity + 1e-9)

    def test_reoptimize_with_migration_costs_reduces_moves(self, scenario):
        """The migration objective must make the optimizer prefer
        keeping resources where they are: re-optimizing an already
        committed platform should move only a fraction of resources."""
        scheduler = TimeWindowScheduler(
            scenario.infrastructure, BestFitAllocator(), window_length=1.0
        )
        for i, request in enumerate(scenario.requests[:6]):
            scheduler.submit(f"r{i}", request, at=0.0)
        scheduler.run_window()
        hosted_before = scheduler.state.hosted_resource_count
        if hosted_before == 0:
            pytest.skip("nothing committed")
        result = scheduler.reoptimize(NSGA3TabuAllocator(_FAST))
        assert result is not None
        outcome, plan = result
        # Eq. 26 pressure: strictly fewer moves than total resources.
        assert plan.size < hosted_before
