"""Integration tests asserting the *shape* of the paper's figures on
miniature sweeps: who wins, who violates, who scales.

These are the qualitative claims of Section IV:

* Fig. 7  — greedy/CP faster than evolutionary algorithms on small
  problems;
* Fig. 9  — NSGA-III+Tabu rejects no more than Round Robin and far less
  than unmodified NSGA;
* Fig. 10 — only unmodified NSGA-II/III violate constraints;
* Fig. 11 — NSGA-III+Tabu provider cost stays within a reasonable
  factor of the CP cost.
"""

import numpy as np
import pytest

from repro import (
    CPAllocator,
    NSGA3Allocator,
    NSGA3TabuAllocator,
    NSGAConfig,
    RoundRobinAllocator,
    ScenarioGenerator,
    ScenarioSpec,
)
from repro.evaluation import ExperimentRunner

_FAST = NSGAConfig(population_size=20, max_evaluations=600, seed=1)

FACTORIES = {
    "round_robin": lambda: RoundRobinAllocator(),
    "constraint_programming": lambda: CPAllocator(optimize=False),
    "nsga3": lambda: NSGA3Allocator(_FAST),
    "nsga3_tabu": lambda: NSGA3TabuAllocator(_FAST),
}


@pytest.fixture(scope="module")
def sweep():
    runner = ExperimentRunner(FACTORIES, runs=3, seed=11)
    specs = [
        ScenarioSpec(servers=16, datacenters=2, vms=32, tightness=0.65),
        ScenarioSpec(servers=32, datacenters=2, vms=64, tightness=0.65),
    ]
    return runner.run_sweep(specs)


class TestFigureShapes:
    def test_fig7_greedy_faster_than_ea_on_small_problems(self, sweep):
        small = sweep.sizes()[0]
        rr = sweep.aggregate("round_robin", small).mean_elapsed
        tabu = sweep.aggregate("nsga3_tabu", small).mean_elapsed
        assert rr < tabu

    def test_fig9_tabu_rejection_at_most_round_robin(self, sweep):
        for size in sweep.sizes():
            tabu = sweep.aggregate("nsga3_tabu", size).mean_rejection_rate
            rr = sweep.aggregate("round_robin", size).mean_rejection_rate
            assert tabu <= rr + 0.05, size

    def test_fig9_unmodified_nsga_rejects_most(self, sweep):
        for size in sweep.sizes():
            plain = sweep.aggregate("nsga3", size).mean_rejection_rate
            tabu = sweep.aggregate("nsga3_tabu", size).mean_rejection_rate
            assert plain >= tabu, size

    def test_fig10_only_unmodified_nsga_violates(self, sweep):
        for size in sweep.sizes():
            assert sweep.aggregate("round_robin", size).mean_violations == 0
            assert (
                sweep.aggregate("constraint_programming", size).mean_violations
                == 0
            )
            assert sweep.aggregate("nsga3_tabu", size).mean_violations == 0
            # Unmodified NSGA-III violates on these tight instances.
            assert sweep.aggregate("nsga3", size).mean_violations > 0

    def test_fig11_tabu_cost_reasonable_vs_cp(self, sweep):
        for size in sweep.sizes():
            tabu = sweep.aggregate("nsga3_tabu", size)
            cp = sweep.aggregate("constraint_programming", size)
            # "at higher costs than optimal albeit still reasonable" —
            # CP rejects some requests (its cost covers fewer VMs), so
            # allow a generous but bounded factor.
            assert tabu.mean_provider_cost <= 2.0 * cp.mean_provider_cost, size

    def test_series_accessor_consistency(self, sweep):
        series = sweep.series("violations")
        assert set(series) == set(FACTORIES)
        for values in series.values():
            assert len(values) == len(sweep.sizes())
