"""Bitwise parity of repro.utils.scatter vs the np.add.at idiom.

Every ``np.add.at`` scatter outside the verify layer was replaced by
:func:`~repro.utils.scatter.scatter_rows` /
:func:`~repro.utils.scatter.scatter_values` (PR 10).  The replacement
is only sound because bincount and add.at both accumulate duplicate
indices in input order, so float64 sums come out bit-identical — these
tests pin that contract down on adversarial index patterns.
"""

import numpy as np
import pytest

from repro.utils.scatter import scatter_rows, scatter_values


def _add_at_rows(index, rows, length):
    out = np.zeros((length, rows.shape[1]), dtype=np.float64)
    np.add.at(out, index, rows)
    return out


def _add_at_values(index, values, length):
    out = np.zeros(length, dtype=np.float64)
    np.add.at(out, index, values)
    return out


@pytest.mark.parametrize("seed", range(5))
def test_scatter_rows_bitwise_parity(seed):
    rng = np.random.default_rng(seed)
    n, length, h = 200, 17, 4
    index = rng.integers(0, length, size=n)
    # Wide magnitude spread: catches any reordering of the accumulation,
    # since float addition is not associative.
    rows = rng.standard_normal((n, h)) * 10.0 ** rng.integers(-8, 8, size=(n, h))
    expected = _add_at_rows(index, rows, length)
    assert scatter_rows(index, rows, length).tobytes() == expected.tobytes()


@pytest.mark.parametrize("seed", range(5))
def test_scatter_values_bitwise_parity(seed):
    rng = np.random.default_rng(seed)
    n, length = 300, 11
    index = rng.integers(0, length, size=n)
    values = rng.standard_normal(n) * 10.0 ** rng.integers(-8, 8, size=n)
    expected = _add_at_values(index, values, length)
    assert scatter_values(index, values, length).tobytes() == expected.tobytes()


def test_scatter_all_duplicates_single_bucket():
    # Every update lands on one server: pure accumulation-order test.
    rng = np.random.default_rng(42)
    rows = rng.standard_normal((64, 3))
    index = np.zeros(64, dtype=np.int64)
    expected = _add_at_rows(index, rows, 5)
    got = scatter_rows(index, rows, 5)
    assert got.tobytes() == expected.tobytes()
    assert np.all(got[1:] == 0.0)


def test_scatter_empty_inputs():
    assert scatter_rows(
        np.empty(0, dtype=np.int64), np.empty((0, 3)), 7
    ).tobytes() == np.zeros((7, 3)).tobytes()
    assert scatter_values(
        np.empty(0, dtype=np.int64), np.empty(0), 7
    ).tobytes() == np.zeros(7).tobytes()


def test_scatter_rows_rejects_1d_rows():
    with pytest.raises(ValueError, match="2-D"):
        scatter_rows(np.array([0, 1]), np.array([1.0, 2.0]), 3)


def test_scatter_truncates_to_length():
    # bincount can return more than ``length`` buckets when index never
    # reaches length-1 is irrelevant — but minlength padding must not
    # leak extra rows when index stays small.
    index = np.array([0, 0, 1])
    rows = np.ones((3, 2))
    out = scatter_rows(index, rows, 2)
    assert out.shape == (2, 2)
    assert scatter_values(index, np.ones(3), 2).shape == (2,)
