"""Unit tests for the constraint system (Eq. 4-5, 9-12)."""

import numpy as np
import pytest

from repro.constraints import (
    AssignmentConstraint,
    CapacityConstraint,
    ConstraintSet,
    DifferentDatacentersConstraint,
    DifferentServersConstraint,
    SameDatacenterConstraint,
    SameServerConstraint,
    make_group_constraint,
)
from repro.errors import ConstraintError, DimensionError
from repro.model import PlacementGroup, Request
from repro.model.placement import UNPLACED
from repro.types import PlacementRule


class TestCapacity:
    def test_fits_when_within_limits(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        spread = np.array([0, 0, 2, 3, 4, 5])
        assert constraint.violations(spread) == 0

    def test_overload_counts_cells(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        all_on_zero = np.zeros(6, dtype=np.int64)
        # Server 0: 16*0.95=15.2 cpu vs 14 demanded -> fits cpu, but
        # 64*0.95=60.8 ram vs 56 fits, disk 475 vs 350 fits: actually ok;
        # verify via the mask rather than guessing.
        assert constraint.violations(all_on_zero) == int(
            constraint.overloaded_cells(all_on_zero).sum()
        )

    def test_base_usage_shrinks_limit(self, small_infra, small_request):
        base = np.zeros((8, 3))
        base[0] = small_infra.effective_capacity[0]  # server 0 full
        constraint = CapacityConstraint(
            small_infra, small_request.demand, base_usage=base
        )
        one_vm = np.array([0, 1, 2, 3, 4, 5])
        assert constraint.violations(one_vm) > 0

    def test_overloaded_servers_detection(self, small_infra):
        demand = np.tile(small_infra.effective_capacity[0], (2, 1))
        constraint = CapacityConstraint(small_infra, demand)
        both_on_zero = np.array([0, 0])
        assert 0 in constraint.overloaded_servers(both_on_zero)

    def test_unplaced_genes_add_nothing(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        genome = np.full(6, UNPLACED, dtype=np.int64)
        assert constraint.violations(genome) == 0
        assert np.allclose(constraint.server_usage(genome), 0.0)

    def test_batch_matches_single(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        rng = np.random.default_rng(0)
        population = rng.integers(0, 8, size=(25, 6))
        population[3, 2] = UNPLACED
        batch = constraint.batch_violations(population)
        single = [constraint.violations(row) for row in population]
        assert batch.tolist() == single

    def test_batch_usage_matches_single(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        rng = np.random.default_rng(1)
        population = rng.integers(0, 8, size=(10, 6))
        usage = constraint.batch_usage(population)
        for i in range(10):
            assert np.allclose(usage[i], constraint.server_usage(population[i]))

    def test_fits_predicate(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        genome = np.array([0, 0, 2, 3, 4, 5])
        # Moving VM 5 onto server 0 alongside 0 and 1: demand sums
        # (2+2+1, 8+8+4, 50+50+25) = (5, 20, 125) well within limits.
        assert constraint.fits(genome, 5, 0)

    def test_demand_shape_checked(self, small_infra):
        with pytest.raises(DimensionError):
            CapacityConstraint(small_infra, np.ones((3, 2)))


class TestAssignment:
    def test_counts_unplaced(self):
        constraint = AssignmentConstraint(4)
        assert constraint.violations(np.array([0, UNPLACED, 2, UNPLACED])) == 2
        assert constraint.violations(np.array([0, 1, 2, 3])) == 0

    def test_batch(self):
        constraint = AssignmentConstraint(3)
        population = np.array([[0, 1, 2], [UNPLACED, 1, UNPLACED]])
        assert constraint.batch_violations(population).tolist() == [0, 2]

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            AssignmentConstraint(3).violations(np.array([0, 1]))


class TestAffinityRules:
    def test_same_server_counts_extra_locations(self):
        constraint = SameServerConstraint((0, 1, 2))
        assert constraint.violations(np.array([3, 3, 3])) == 0
        assert constraint.violations(np.array([3, 3, 4])) == 1
        assert constraint.violations(np.array([3, 4, 5])) == 2

    def test_same_server_ignores_unplaced(self):
        constraint = SameServerConstraint((0, 1))
        assert constraint.violations(np.array([UNPLACED, 3])) == 0

    def test_same_datacenter(self, small_infra):
        constraint = SameDatacenterConstraint((0, 1), small_infra)
        assert constraint.violations(np.array([0, 3])) == 0  # both dc0
        assert constraint.violations(np.array([0, 4])) == 1  # dc0 vs dc1

    def test_different_servers_counts_collisions(self):
        constraint = DifferentServersConstraint((0, 1, 2))
        assert constraint.violations(np.array([1, 2, 3])) == 0
        assert constraint.violations(np.array([1, 1, 3])) == 1
        assert constraint.violations(np.array([1, 1, 1])) == 2

    def test_different_datacenters(self, small_infra):
        constraint = DifferentDatacentersConstraint((0, 1), small_infra)
        assert constraint.violations(np.array([0, 4])) == 0
        assert constraint.violations(np.array([0, 3])) == 1  # both dc0

    def test_batch_matches_single_for_all_rules(self, small_infra):
        rng = np.random.default_rng(2)
        population = rng.integers(0, 8, size=(30, 5))
        constraints = [
            SameServerConstraint((0, 2, 4)),
            SameDatacenterConstraint((1, 3), small_infra),
            DifferentServersConstraint((0, 1, 2, 3)),
            DifferentDatacentersConstraint((2, 4), small_infra),
        ]
        for constraint in constraints:
            batch = constraint.batch_violations(population)
            single = [constraint.violations(row) for row in population]
            assert batch.tolist() == single, constraint.name

    def test_batch_with_unplaced_falls_back(self, small_infra):
        constraint = SameServerConstraint((0, 1))
        population = np.array([[UNPLACED, 3], [2, 2]])
        assert constraint.batch_violations(population).tolist() == [0, 0]

    def test_member_outside_genome_raises(self):
        constraint = SameServerConstraint((0, 9))
        with pytest.raises(ConstraintError):
            constraint.violations(np.array([0, 1]))


class TestFactoryAndSet:
    def test_factory_maps_all_rules(self, small_infra):
        mapping = {
            PlacementRule.SAME_SERVER: SameServerConstraint,
            PlacementRule.SAME_DATACENTER: SameDatacenterConstraint,
            PlacementRule.DIFFERENT_SERVERS: DifferentServersConstraint,
            PlacementRule.DIFFERENT_DATACENTERS: DifferentDatacentersConstraint,
        }
        for rule, cls in mapping.items():
            group = PlacementGroup(rule, (0, 1))
            assert isinstance(make_group_constraint(group, small_infra), cls)

    def test_set_composition(self, small_infra, small_request):
        constraint_set = ConstraintSet(small_infra, small_request)
        # capacity + 2 groups + assignment
        assert len(constraint_set) == 4
        no_assign = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert len(no_assign) == 3

    def test_breakdown_keys(self, small_infra, small_request):
        constraint_set = ConstraintSet(small_infra, small_request)
        genome = np.array([0, 1, 2, 2, 4, 5])  # breaks both groups
        breakdown = constraint_set.breakdown(genome)
        assert breakdown["same_server"] == 1
        assert breakdown["different_servers"] == 1
        assert breakdown["assignment"] == 0

    def test_feasibility(self, small_infra, small_request):
        constraint_set = ConstraintSet(small_infra, small_request)
        good = np.array([0, 0, 2, 3, 4, 5])
        assert constraint_set.is_feasible(good)
        bad = np.array([0, 1, 2, 3, 4, 5])  # breaks same-server (0,1)
        assert not constraint_set.is_feasible(bad)

    def test_batch_total_matches_single(self, small_infra, small_request):
        constraint_set = ConstraintSet(small_infra, small_request)
        rng = np.random.default_rng(3)
        population = rng.integers(0, 8, size=(20, 6))
        batch = constraint_set.batch_violations(population)
        single = [constraint_set.violations(row) for row in population]
        assert batch.tolist() == single

    def test_batch_breakdown_sums_to_total(self, small_infra, small_request):
        constraint_set = ConstraintSet(small_infra, small_request)
        rng = np.random.default_rng(4)
        population = rng.integers(0, 8, size=(15, 6))
        breakdown = constraint_set.batch_breakdown(population)
        total = sum(breakdown.values())
        assert np.array_equal(total, constraint_set.batch_violations(population))
