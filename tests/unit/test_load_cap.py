"""Unit tests for the strict QoS load-cap constraint mode."""

import numpy as np

from repro.constraints import ConstraintSet
from repro.constraints.load_cap import LoadCapConstraint


class TestLoadCapConstraint:
    def test_tighter_than_capacity(self, small_infra, small_request):
        """Any genome violating plain capacity also violates the knee
        cap (LM < 1 everywhere), never the reverse direction."""
        rng = np.random.default_rng(0)
        plain = ConstraintSet(small_infra, small_request, include_assignment=False)
        cap = plain.capacity
        knee = LoadCapConstraint(small_infra, small_request.demand)
        for _ in range(30):
            genome = rng.integers(0, small_infra.m, size=small_request.n)
            if cap.violations(genome) > 0:
                assert knee.violations(genome) > 0

    def test_detects_past_knee_within_capacity(self, small_infra):
        # Demand at 90% of server 0's raw capacity: within P*F? F=0.95
        # so 0.90 < 0.95 passes capacity, but LM=0.8 fails the knee.
        demand = (0.9 * small_infra.capacity[0])[None, :]
        import numpy as np

        from repro.model import Request

        request = Request(
            demand=demand,
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        strict = ConstraintSet(
            small_infra, request, include_assignment=False, qos_strict=True
        )
        loose = ConstraintSet(small_infra, request, include_assignment=False)
        genome = np.array([0])
        assert loose.violations(genome) == 0
        assert strict.violations(genome) > 0
        assert strict.breakdown(genome)["load_cap"] > 0

    def test_batch_matches_single(self, small_infra, small_request):
        rng = np.random.default_rng(1)
        knee = LoadCapConstraint(small_infra, small_request.demand)
        population = rng.integers(0, small_infra.m, size=(20, small_request.n))
        batch = knee.batch_violations(population)
        single = [knee.violations(row) for row in population]
        assert batch.tolist() == single

    def test_base_usage_tightens(self, small_infra, small_request):
        base = 0.5 * small_infra.max_load * small_infra.capacity
        tight = LoadCapConstraint(
            small_infra, small_request.demand, base_usage=base
        )
        loose = LoadCapConstraint(small_infra, small_request.demand)
        rng = np.random.default_rng(2)
        for _ in range(20):
            genome = rng.integers(0, small_infra.m, size=small_request.n)
            assert tight.violations(genome) >= loose.violations(genome)

    def test_constraint_set_default_off(self, small_infra, small_request):
        plain = ConstraintSet(small_infra, small_request)
        assert plain.load_cap is None
        assert "load_cap" not in plain.breakdown(
            np.zeros(small_request.n, dtype=np.int64)
        )
