"""Unit tests for NSGA building blocks: sorting, crowding, reference
points, population container, config."""

import numpy as np
import pytest

from repro.ea import (
    NSGAConfig,
    Population,
    crowding_distance,
    das_dennis_points,
    fast_non_dominated_sort,
    ReferencePointNiching,
    constrained_sort_keys,
    greedy_seed,
    random_population,
)
from repro.errors import ValidationError
from repro.utils.pareto import dominates


def _naive_fronts(objectives):
    """Oracle: peel fronts by repeated nondominated filtering."""
    remaining = list(range(len(objectives)))
    ranks = np.full(len(objectives), -1)
    front = 0
    while remaining:
        current = [
            i
            for i in remaining
            if not any(
                dominates(objectives[j], objectives[i])
                for j in remaining
                if j != i
            )
        ]
        for i in current:
            ranks[i] = front
        remaining = [i for i in remaining if i not in current]
        front += 1
    return ranks


class TestFastNonDominatedSort:
    def test_matches_naive_oracle(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            objs = rng.random((20, 3)).round(1)  # rounding forces ties
            assert fast_non_dominated_sort(objs).tolist() == _naive_fronts(
                objs
            ).tolist(), f"trial {trial}"

    def test_single_front_when_incomparable(self):
        objs = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        assert fast_non_dominated_sort(objs).tolist() == [0, 0, 0]

    def test_chain_gives_distinct_fronts(self):
        objs = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        assert fast_non_dominated_sort(objs).tolist() == [0, 1, 2]

    def test_empty(self):
        assert fast_non_dominated_sort(np.empty((0, 2))).size == 0

    def test_constrained_keys_feasible_first(self):
        objs = np.array([[1.0, 1.0], [0.5, 0.5], [9.0, 9.0]])
        violations = np.array([0, 3, 0])
        ranks, tiers = constrained_sort_keys(objs, violations)
        assert tiers.tolist() == [0, 4, 0]
        # Feasible ones Pareto-ranked among themselves.
        assert ranks[0] == 0 and ranks[2] == 1


class TestCrowding:
    def test_boundaries_are_infinite(self):
        objs = np.array([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        distance = crowding_distance(objs)
        assert np.isinf(distance[0]) and np.isinf(distance[3])
        assert np.isfinite(distance[1]) and np.isfinite(distance[2])

    def test_uniform_spacing_equal_interior(self):
        objs = np.array([[float(i), float(4 - i)] for i in range(5)])
        distance = crowding_distance(objs)
        assert distance[1] == pytest.approx(distance[2]) == pytest.approx(
            distance[3]
        )

    def test_small_fronts_all_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1.0, 2.0]]))).all()
        assert np.isinf(
            crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))
        ).all()

    def test_degenerate_objective_ignored(self):
        objs = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        distance = crowding_distance(objs)
        assert np.isfinite(distance[1])  # constant column contributes 0

    def test_denser_point_has_smaller_distance(self):
        # Point 1 sits in a tight cluster (0 and 2 are close); point 2
        # has the huge gap toward boundary point 3.
        objs = np.array([[0.0, 10.0], [1.0, 9.0], [1.2, 8.8], [10.0, 0.0]])
        distance = crowding_distance(objs)
        assert distance[1] < distance[2]


class TestDasDennis:
    def test_count_formula(self):
        # C(k + p - 1, p) points for k objectives, p divisions.
        from math import comb

        for k, p in [(2, 4), (3, 12), (3, 4), (4, 3)]:
            points = das_dennis_points(k, p)
            assert points.shape == (comb(k + p - 1, p), k)

    def test_91_points_for_paper_config(self):
        assert das_dennis_points(3, 12).shape[0] == 91

    def test_rows_sum_to_one(self):
        points = das_dennis_points(3, 7)
        assert np.allclose(points.sum(axis=1), 1.0)
        assert np.all(points >= 0)

    def test_rows_unique(self):
        points = das_dennis_points(3, 6)
        assert len({tuple(row.round(9)) for row in points}) == len(points)

    def test_validation(self):
        with pytest.raises(ValidationError):
            das_dennis_points(1, 3)
        with pytest.raises(ValidationError):
            das_dennis_points(3, 0)


class TestNiching:
    def test_association_picks_nearest_direction(self):
        niching = ReferencePointNiching(np.array([[1.0, 0.0], [0.0, 1.0]]))
        normalized = np.array([[0.9, 0.1], [0.1, 0.9]])
        nearest, distance = niching.associate(normalized)
        assert nearest.tolist() == [0, 1]
        assert np.all(distance >= 0)

    def test_select_fills_empty_niches_first(self):
        niching = ReferencePointNiching(np.array([[1.0, 0.0], [0.0, 1.0]]))
        objs = np.array(
            [[0.1, 0.9], [0.2, 0.8], [0.9, 0.1], [0.8, 0.2]]
        )
        confirmed = np.array([0, 1])  # both in niche of [0, 1]
        partial = np.array([2, 3])
        picked = niching.select(objs, confirmed, partial, 1, seed=0)
        assert picked.size == 1 and picked[0] in (2, 3)

    def test_select_whole_front_shortcut(self):
        niching = ReferencePointNiching(das_dennis_points(2, 4))
        objs = np.random.default_rng(1).random((6, 2))
        partial = np.arange(6)
        picked = niching.select(objs, np.empty(0, dtype=np.int64), partial, 6)
        assert np.array_equal(picked, partial)

    def test_select_count_validated(self):
        niching = ReferencePointNiching(das_dennis_points(2, 4))
        objs = np.random.default_rng(1).random((3, 2))
        with pytest.raises(ValidationError):
            niching.select(objs, np.empty(0, dtype=np.int64), np.arange(3), 5)

    def test_zero_reference_point_rejected(self):
        with pytest.raises(ValidationError):
            ReferencePointNiching(np.array([[0.0, 0.0]]))

    def test_normalize_range(self):
        objs = np.array([[10.0, 100.0], [20.0, 300.0], [15.0, 200.0]])
        normalized = ReferencePointNiching.normalize(objs)
        assert normalized.min() == pytest.approx(0.0)
        assert normalized.max() == pytest.approx(1.0)


class TestPopulationContainer:
    def _population(self, n=5):
        rng = np.random.default_rng(0)
        return Population(
            genomes=rng.integers(0, 4, size=(n, 3)),
            objectives=rng.random((n, 3)),
            violations=np.array([0, 1, 0, 2, 0][:n]),
        )

    def test_sizes_consistent(self):
        pop = self._population()
        assert len(pop) == 5 and pop.n_objectives == 3

    def test_inconsistent_rejected(self):
        with pytest.raises(ValidationError):
            Population(
                genomes=np.zeros((3, 2), dtype=np.int64),
                objectives=np.zeros((4, 3)),
                violations=np.zeros(3, dtype=np.int64),
            )

    def test_take_copies(self):
        pop = self._population()
        sub = pop.take(np.array([0, 2]))
        sub.genomes[0, 0] = 99
        assert pop.genomes[0, 0] != 99

    def test_concatenate(self):
        a, b = self._population(3), self._population(2)
        merged = Population.concatenate(a, b)
        assert len(merged) == 5

    def test_best_feasible_is_feasible(self):
        pop = self._population()
        idx = pop.best_feasible_index()
        assert pop.violations[idx] == 0

    def test_best_feasible_none_when_all_violate(self):
        pop = Population(
            genomes=np.zeros((2, 2), dtype=np.int64),
            objectives=np.ones((2, 3)),
            violations=np.array([1, 2]),
        )
        assert pop.best_feasible_index() is None
        assert pop.least_violating_index() == 0

    def test_ideal_point_pick(self):
        pop = Population(
            genomes=np.zeros((3, 2), dtype=np.int64),
            objectives=np.array(
                [[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [0.1, 0.1, 0.1]]
            ),
            violations=np.zeros(3, dtype=np.int64),
        )
        # Point 2 is closest to the normalized ideal (0, 0, 0).
        assert pop.best_feasible_index() == 2


class TestConfigAndEncoding:
    def test_table3_defaults(self):
        config = NSGAConfig()
        assert config.population_size == 100
        assert config.max_evaluations == 10_000
        assert config.sbx_rate == 0.70
        assert config.sbx_distribution_index == 15.0
        assert config.pm_rate == 0.20
        assert config.pm_distribution_index == 15.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            NSGAConfig(population_size=3)
        with pytest.raises(ValidationError):
            NSGAConfig(population_size=5)  # odd
        with pytest.raises(ValidationError):
            NSGAConfig(max_evaluations=10, population_size=100)
        with pytest.raises(ValidationError):
            NSGAConfig(sbx_rate=1.5)
        with pytest.raises(ValidationError):
            NSGAConfig(time_limit=0.0)

    def test_with_update(self):
        config = NSGAConfig().with_(population_size=40)
        assert config.population_size == 40
        assert config.sbx_rate == 0.70

    def test_random_population_range(self):
        pop = random_population(10, 5, 7, seed=0)
        assert pop.shape == (10, 5)
        assert pop.min() >= 0 and pop.max() < 7

    def test_random_population_deterministic(self):
        assert np.array_equal(
            random_population(4, 3, 5, seed=1), random_population(4, 3, 5, seed=1)
        )

    def test_greedy_seed_feasible_when_roomy(self, small_infra, small_request):
        genome = greedy_seed(small_infra, small_request, seed=0)
        from repro.constraints import CapacityConstraint

        constraint = CapacityConstraint(small_infra, small_request.demand)
        assert constraint.violations(genome) == 0
