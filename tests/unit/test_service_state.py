"""Unit tests for the service's single-writer state and admission layer."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.model import Request
from repro.service import (
    AdmissionController,
    ServiceState,
    replay_admission_log,
)
from repro.service.admission import diagnose_rejection


def _request(n=2, scale=1.0):
    return Request(
        demand=np.full((n, 3), scale),
        qos_guarantee=np.full(n, 0.9),
        downtime_cost=np.ones(n),
        migration_cost=np.full(n, 7.0),
    )


class TestServiceState:
    def test_admit_commits_and_logs(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        report = state.admit(arrivals=[("a", _request()), ("b", _request())])
        assert set(report.accepted) == {"a", "b"}
        assert state.epoch == 1
        assert state.tenant_count() == 2
        assert state.is_hosted("a") and state.knows_key("a")
        (record,) = state.log
        assert record["type"] == "window"
        assert sorted(record["accepted"]) == ["a", "b"]

    def test_departure_releases_capacity(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        state.admit(arrivals=[("a", _request())])
        state.admit(departures=["a"])
        assert not state.is_hosted("a")
        assert state.knows_key("a")  # keys are permanent
        assert state.epoch == 2
        assert state.log[1]["departures"] == ["a"]

    def test_epoch_guard_rejects_stale_plan(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        state.admit(arrivals=[("a", _request())])
        _payload, epoch = state.snapshot()
        # A failure (or any admission) between snapshot and apply moves
        # the epoch; the stale plan must be discarded untouched.
        hosted_on = int(state.scheduler.state.previous_assignment("a")[0])
        state.admit(failures=[hosted_on])
        before = state.residents()
        applied = state.apply_reoptimization(
            {"a": [0, 0]}, epoch
        )
        assert applied is False
        assert state.residents() == before

    def test_apply_reoptimization_requires_matching_tenants(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        state.admit(arrivals=[("a", _request())])
        with pytest.raises(SchedulerError):
            state.apply_reoptimization(
                {"a": [0, 0], "ghost": [1, 1]}, epoch=state.epoch
            )

    def test_apply_reoptimization_moves_and_logs(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        state.admit(arrivals=[("a", _request())])
        current = [int(g) for g in state.scheduler.state.previous_assignment("a")]
        target = [2 if g != 2 else 3 for g in current]
        assert state.apply_reoptimization({"a": target}, epoch=state.epoch)
        assert state.residents()["a"] == target
        assert state.log[-1]["type"] == "reoptimize"
        state.scheduler.state.verify_consistency()

    def test_state_payload_round_trip(self, small_infra):
        state = ServiceState(small_infra, seed=5)
        state.admit(arrivals=[("a", _request()), ("b", _request())])
        state.admit(departures=["a"])
        payload = state.state_payload()

        restored = ServiceState(small_infra, seed=5)
        restored.restore_payload(payload)
        assert restored.epoch == state.epoch
        assert restored.residents() == state.residents()
        usage = state.scheduler.state.committed_usage
        assert restored.scheduler.state.committed_usage.tobytes() == usage.tobytes()

    def test_replay_reproduces_residents(self, small_infra):
        state = ServiceState(small_infra, seed=2)
        state.admit(arrivals=[("a", _request()), ("b", _request())])
        state.admit(departures=["a"], arrivals=[("c", _request())])
        replayed = replay_admission_log(small_infra, state.log, seed=2)
        assert replayed.residents() == state.residents()
        assert replayed.epoch == state.epoch


class TestAdmissionController:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_accept_and_duplicate(self, small_infra):
        async def scenario():
            state = ServiceState(small_infra, seed=0)
            controller = AdmissionController(state)
            controller.start()
            try:
                first = await controller.submit_request("a", _request())
                dup = await controller.submit_request("a", _request())
            finally:
                await controller.stop()
            return first, dup

        first, dup = self._run(scenario())
        assert first.accepted and first.placement is not None
        assert not dup.accepted and dup.reason == "duplicate_key"

    def test_departure_validation(self, small_infra):
        async def scenario():
            state = ServiceState(small_infra, seed=0)
            controller = AdmissionController(state)
            controller.start()
            try:
                unknown = await controller.depart("nope")
                await controller.submit_request("a", _request())
                ok = await controller.depart("a")
                again = await controller.depart("a")
            finally:
                await controller.stop()
            return unknown, ok, again

        unknown, ok, again = self._run(scenario())
        assert not unknown.accepted and unknown.reason == "unknown_key"
        assert ok.accepted
        assert not again.accepted and again.reason == "not_hosted"

    def test_queue_overflow_returns_none(self, small_infra):
        async def scenario():
            state = ServiceState(small_infra, seed=0)
            controller = AdmissionController(state, max_queue=1)
            # Worker not started: the queue can only fill up.
            first = controller._enqueue("arrival", "a", _request(), None)
            second = controller._enqueue("arrival", "b", _request(), None)
            return first, second

        first, second = self._run(scenario())
        assert first is not None
        assert second is None  # the API layer's 429

    def test_drain_reports_displacements(self, small_infra):
        async def scenario():
            state = ServiceState(small_infra, seed=0)
            controller = AdmissionController(state)
            controller.start()
            try:
                placed = await controller.submit_request("a", _request())
                server = placed.placement[0]
                decision = await controller.drain(server)
                recovery = await controller.recover(server)
            finally:
                await controller.stop()
            return decision, recovery

        decision, recovery = self._run(scenario())
        assert decision.accepted and decision.action == "drain"
        assert "a" in decision.detail["displaced"]
        assert recovery.accepted and recovery.action == "recover"

    def test_rejection_reason_is_structured(self, small_infra):
        state = ServiceState(small_infra, seed=0)
        # Saturate so the next giant request cannot fit anywhere.
        reason = diagnose_rejection(state, _request(n=2, scale=1e5))
        assert reason in ("capacity", "affinity")
