"""Unit tests for placement analytics, CSV export and the group-aware
crossover."""

import numpy as np
import pytest

from repro.analysis import (
    datacenter_utilization,
    fragmentation,
    placement_report,
    qos_headroom,
)
from repro.baselines import BestFitAllocator, WorstFitAllocator
from repro.constraints import ConstraintSet
from repro.ea.operators import group_block_crossover
from repro.errors import ValidationError
from repro.evaluation import ExperimentRunner, SweepResult
from repro.model import Request
from repro.model.placement import UNPLACED
from repro.workloads import ScenarioGenerator, ScenarioSpec


class TestDatacenterUtilization:
    def test_balanced_split(self, small_infra, small_request):
        # Three VMs in each datacenter on same-sized servers.
        assignment = np.array([0, 1, 2, 4, 5, 6])
        utilization, imbalance = datacenter_utilization(
            assignment, small_infra, small_request.demand
        )
        assert utilization.shape == (2, 3)
        assert imbalance >= 0

    def test_one_sided_placement_maximizes_imbalance(
        self, small_infra, small_request
    ):
        lopsided = np.array([0, 0, 1, 2, 3, 0])  # everything in dc0
        _, imbalance_lop = datacenter_utilization(
            lopsided, small_infra, small_request.demand
        )
        spread = np.array([0, 0, 2, 4, 5, 6])
        _, imbalance_spread = datacenter_utilization(
            spread, small_infra, small_request.demand
        )
        assert imbalance_lop > imbalance_spread

    def test_unplaced_contribute_nothing(self, small_infra, small_request):
        empty = np.full(small_request.n, UNPLACED, dtype=np.int64)
        utilization, imbalance = datacenter_utilization(
            empty, small_infra, small_request.demand
        )
        assert np.allclose(utilization, 0.0)
        assert imbalance == 0.0


class TestFragmentation:
    def test_empty_estate_not_fragmented(self, small_infra, small_request):
        empty = np.full(small_request.n, UNPLACED, dtype=np.int64)
        assert fragmentation(empty, small_infra, small_request.demand) == 0.0

    def test_in_unit_interval(self, small_infra, small_request):
        rng = np.random.default_rng(0)
        for _ in range(10):
            genome = rng.integers(0, small_infra.m, size=small_request.n)
            value = fragmentation(genome, small_infra, small_request.demand)
            assert 0.0 <= value <= 1.0

    def test_spreading_keeps_chunks_usable_at_low_tightness(self):
        """At comfortable load, spreading leaves every server with room
        for another average VM (fragmentation 0), while packing leaves
        small unusable leftovers on the filled servers."""
        spec = ScenarioSpec(
            servers=16, datacenters=2, vms=40, tightness=0.45, heterogeneity=0.0
        )
        scenario = ScenarioGenerator(spec, seed=0).generate()
        merged, _ = Request.concatenate(scenario.requests)
        packed = BestFitAllocator().allocate(
            scenario.infrastructure, scenario.requests
        )
        spread = WorstFitAllocator().allocate(
            scenario.infrastructure, scenario.requests
        )
        frag_packed = fragmentation(
            packed.assignment, scenario.infrastructure, merged.demand
        )
        frag_spread = fragmentation(
            spread.assignment, scenario.infrastructure, merged.demand
        )
        assert frag_spread == 0.0
        assert frag_packed >= frag_spread


class TestQosHeadroom:
    def test_negative_past_knee(self, tiny_infra, tiny_request):
        both_on_zero = np.array([0, 0])  # load 0.8 > knee 0.5
        headroom = qos_headroom(both_on_zero, tiny_infra, tiny_request)
        assert headroom[0] < 0
        assert headroom[1] == pytest.approx(0.5)  # idle server: LM - 0

    def test_report_bundle(self, small_infra, small_request):
        report = placement_report(
            np.array([0, 0, 2, 3, 4, 5]), small_infra, small_request
        )
        assert report.unplaced == 0
        assert report.servers_past_knee >= 0
        assert 0.0 <= report.fragmentation <= 1.0


class TestSweepCsv:
    def test_roundtrip(self, tmp_path):
        from repro.baselines import FirstFitAllocator

        runner = ExperimentRunner({"ff": FirstFitAllocator}, runs=2, seed=0)
        result = runner.run_sweep([ScenarioSpec(servers=10, vms=20)])
        path = result.to_csv(tmp_path / "sweep.csv")
        back = SweepResult.from_csv(path)
        assert len(back.records) == len(result.records)
        assert back.records[0] == result.records[0]
        assert back.series("rejection_rate") == result.series("rejection_rate")


class TestGroupBlockCrossover:
    def test_groups_inherited_atomically(self, small_request):
        rng = np.random.default_rng(0)
        parents = rng.integers(0, 8, size=(40, small_request.n))
        children = group_block_crossover(parents, small_request, rate=1.0, seed=1)
        # For each child and each group, the member genes must all come
        # from the same parent of its pair.
        for pair in range(20):
            p1, p2 = parents[2 * pair], parents[2 * pair + 1]
            for child in (children[2 * pair], children[2 * pair + 1]):
                for group in small_request.groups:
                    idx = list(group.members)
                    from_p1 = np.array_equal(child[idx], p1[idx])
                    from_p2 = np.array_equal(child[idx], p2[idx])
                    assert from_p1 or from_p2

    def test_gene_conservation_per_pair(self, small_request):
        rng = np.random.default_rng(1)
        parents = rng.integers(0, 8, size=(10, small_request.n))
        children = group_block_crossover(parents, small_request, rate=1.0, seed=2)
        for pair in range(5):
            p = np.sort(parents[2 * pair : 2 * pair + 2], axis=0)
            c = np.sort(children[2 * pair : 2 * pair + 2], axis=0)
            assert np.array_equal(p, c)

    def test_preserves_parent_feasibility_structure(
        self, small_infra, small_request
    ):
        """Crossing two rule-consistent parents yields rule-consistent
        children (capacity aside) — the operator's whole point."""
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        # Two feasible parents.
        parents = np.array(
            [[0, 0, 2, 3, 4, 5], [6, 6, 1, 7, 2, 3]], dtype=np.int64
        )
        for genome in parents:
            assert constraint_set.violations(genome) == 0
        children = group_block_crossover(
            np.vstack([parents] * 10), small_request, rate=1.0, seed=3
        )
        group_constraints = constraint_set.group_constraints
        for child in children:
            for constraint in group_constraints:
                assert constraint.violations(child) == 0

    def test_rate_zero_identity(self, small_request):
        parents = np.random.default_rng(2).integers(
            0, 8, size=(6, small_request.n)
        )
        children = group_block_crossover(parents, small_request, rate=0.0, seed=4)
        assert np.array_equal(children, parents)

    def test_validation(self, small_request):
        with pytest.raises(ValidationError):
            group_block_crossover(
                np.zeros((3, small_request.n), dtype=np.int64), small_request
            )
        with pytest.raises(ValidationError):
            group_block_crossover(
                np.zeros((2, 3), dtype=np.int64), small_request
            )
