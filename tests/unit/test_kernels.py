"""Unit tests for the kernel-backend layer (registry, edge cases, tiles).

The heavy cross-backend sweep lives in
:func:`repro.verify.check_kernel_conformance`; these tests pin down the
registry semantics (selection, env var, scoped override), the
structural edge cases vectorized code most often gets wrong — empty
populations, all-UNPLACED rows, single-server estates, int32 genomes —
and the satellite contracts around them (capacity retargeting, the
repair usage tile, batch_violations overrides).
"""

import numpy as np
import pytest

from repro.constraints.base import Constraint
from repro.constraints.capacity import CapacityConstraint
from repro.constraints.load_cap import LoadCapConstraint
from repro.engine import CompiledProblem
from repro.engine.kernels import (
    HAVE_NUMBA,
    KERNEL_ENV_VAR,
    GroupLayout,
    available_kernels,
    get_kernel,
    resolve_kernel_name,
    set_kernel,
    use_kernel,
)
from repro.errors import DimensionError, ValidationError
from repro.model.placement import UNPLACED
from repro.model.request import Request
from repro.verify import check_kernel_conformance
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    with use_kernel(None):
        yield


def _compiled(servers=6, datacenters=2, vms=14, seed=5, tightness=0.8):
    spec = ScenarioSpec(
        servers=servers, datacenters=datacenters, vms=vms, tightness=tightness
    )
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    merged, _ = Request.concatenate(list(scenario.requests))
    return CompiledProblem.compile(scenario.infrastructure, merged)


class TestRegistry:
    def test_reference_and_numpy_always_available(self):
        names = available_kernels()
        assert "reference" in names and "numpy" in names

    def test_auto_resolution(self):
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert resolve_kernel_name("auto") == expected

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert resolve_kernel_name(None) == "reference"
        monkeypatch.delenv(KERNEL_ENV_VAR)
        assert resolve_kernel_name(None) == resolve_kernel_name("auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            resolve_kernel_name("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba present on this host")
    def test_numba_without_install_is_an_error_not_a_fallback(self):
        with pytest.raises(ValidationError):
            resolve_kernel_name("numba")

    def test_get_kernel_is_singleton_per_backend(self):
        assert get_kernel("numpy") is get_kernel("numpy")
        assert get_kernel("numpy") is not get_kernel("reference")

    def test_use_kernel_restores_previous(self):
        before = set_kernel("numpy")
        with use_kernel("reference") as kernel:
            assert kernel.name == "reference"
        from repro.engine.kernels import active_kernel

        assert active_kernel() is before


class TestEdgeCases:
    """Satellite: structural edge cases byte-identical across backends."""

    def _snapshots(self, compiled, population):
        evaluator = compiled.evaluator(include_assignment_constraint=True)
        out = {}
        for name in available_kernels():
            with use_kernel(name):
                result = evaluator.evaluate_population(population)
                out[name] = (
                    result.objectives.tobytes(),
                    result.violations.tobytes(),
                )
        return out

    def _assert_identical(self, snapshots):
        reference = snapshots.pop("reference")
        for name, got in snapshots.items():
            assert got == reference, f"{name} diverged from reference"

    def test_empty_population(self):
        compiled = _compiled()
        population = np.empty((0, compiled.request.n), dtype=np.int64)
        self._assert_identical(self._snapshots(compiled, population))

    def test_all_unplaced_rows(self):
        compiled = _compiled()
        population = np.full((4, compiled.request.n), UNPLACED, dtype=np.int64)
        self._assert_identical(self._snapshots(compiled, population))

    def test_single_server_estate(self):
        compiled = _compiled(servers=1, datacenters=1, vms=6, tightness=0.6)
        rng = np.random.default_rng(0)
        population = rng.integers(0, 1, size=(5, compiled.request.n))
        population[0, 0] = UNPLACED
        self._assert_identical(self._snapshots(compiled, population))

    def test_int32_genomes(self):
        compiled = _compiled()
        rng = np.random.default_rng(1)
        population = rng.integers(
            0, compiled.m, size=(6, compiled.request.n)
        ).astype(np.int32)
        self._assert_identical(self._snapshots(compiled, population))

    def test_conformance_checker_clean(self):
        report = check_kernel_conformance(seed=7, instances=1)
        assert report.ok, report.format()
        assert report.comparisons > 0


class TestBatchViolationOverrides:
    """Satellite: no built-in constraint rides the Python-loop fallback."""

    def test_every_builtin_constraint_overrides_the_fallback(self):
        compiled = _compiled(servers=8, vms=20, seed=9)
        constraints = compiled.constraint_set(include_assignment=True)
        checked = [constraints.capacity, *constraints.group_constraints]
        if constraints.assignment is not None:
            checked.append(constraints.assignment)
        checked.append(
            LoadCapConstraint(compiled.infrastructure, compiled.request.demand)
        )
        assert len(checked) >= 3
        for constraint in checked:
            assert (
                type(constraint).batch_violations
                is not Constraint.batch_violations
            ), f"{type(constraint).__name__} uses the generic fallback"

    def test_overrides_match_the_fallback_rowwise(self):
        compiled = _compiled(servers=8, vms=20, seed=9)
        constraints = compiled.constraint_set(include_assignment=True)
        rng = np.random.default_rng(3)
        population = rng.integers(0, compiled.m, size=(12, compiled.request.n))
        population[rng.random(population.shape) < 0.05] = UNPLACED
        for constraint in (constraints.capacity, *constraints.group_constraints):
            vectorized = constraint.batch_violations(population)
            fallback = Constraint.batch_violations(constraint, population)
            assert vectorized.tolist() == fallback.tolist(), constraint.name


class TestCapacityRetarget:
    def test_retarget_keeps_threshold_consistent(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        new_limit = constraint.limit * 0.5
        constraint.retarget(new_limit)
        expected_slack = constraint.tolerance * np.maximum(
            1.0, np.abs(new_limit)
        )
        assert np.array_equal(constraint.limit, new_limit)
        assert np.array_equal(constraint._slack, expected_slack)
        assert np.array_equal(
            constraint._threshold, new_limit + expected_slack
        )

    def test_retarget_rejects_wrong_shape(self, small_infra, small_request):
        constraint = CapacityConstraint(small_infra, small_request.demand)
        with pytest.raises(DimensionError):
            constraint.retarget(np.zeros((1, 1)))

    def test_load_cap_threshold_tracks_knee(self, small_infra, small_request):
        cap = LoadCapConstraint(small_infra, small_request.demand)
        inner = cap._inner
        assert np.array_equal(
            inner._threshold, inner.limit + inner._slack
        )


class TestGroupLayout:
    def test_layout_skips_groupless_instances(self):
        spec = ScenarioSpec(servers=4, datacenters=1, vms=6, affinity_probability=0.0)
        scenario = ScenarioGenerator(spec, seed=2).generate()
        merged, _ = Request.concatenate(list(scenario.requests))
        compiled = CompiledProblem.compile(scenario.infrastructure, merged)
        constraints = compiled.constraint_set()
        if not constraints.group_constraints:
            assert constraints.group_layout() is None

    def test_layout_counts_match_constraints(self):
        compiled = _compiled(servers=8, vms=24, seed=11)
        constraints = compiled.constraint_set()
        layout = constraints.group_layout()
        if layout is None:
            pytest.skip("fuzzed instance drew no placement groups")
        assert isinstance(layout, GroupLayout)
        assert layout.n_groups == len(constraints.group_constraints)


class TestRepairUsageTile:
    def test_tile_rows_match_per_genome_usage(self):
        from repro.tabu.repair import TabuRepair

        compiled = _compiled(servers=6, vms=16, seed=13, tightness=0.95)
        repairer = TabuRepair(
            compiled.infrastructure,
            compiled.request,
            seed=0,
            compiled=compiled,
        )
        rng = np.random.default_rng(4)
        population = rng.integers(
            0, compiled.m, size=(7, compiled.request.n), dtype=np.int64
        )
        rows = np.arange(population.shape[0])
        tile = repairer._usage_tile(population, rows)
        assert tile is not None
        for local, i in enumerate(rows):
            expected = repairer.constraints.capacity.server_usage(population[i])
            assert tile[local].tobytes() == expected.tobytes()

    def test_tile_skipped_for_empty_rows(self):
        from repro.tabu.repair import TabuRepair

        compiled = _compiled()
        repairer = TabuRepair(
            compiled.infrastructure,
            compiled.request,
            seed=0,
            compiled=compiled,
        )
        population = np.zeros((3, compiled.request.n), dtype=np.int64)
        assert repairer._usage_tile(population, np.array([], dtype=np.int64)) is None
