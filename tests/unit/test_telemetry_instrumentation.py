"""Integration tests: the allocation stack emits the events and
counters that docs/OBSERVABILITY.md promises."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator
from repro.cp import CPSolver, SearchLimits
from repro.ea import NSGAConfig
from repro.hybrid import NSGA3TabuAllocator
from repro.model import Infrastructure, PlacementGroup, Request
from repro.objectives import PopulationEvaluator
from repro.scheduler import TimeWindowScheduler
from repro.tabu import TabuRepair, TabuSearch
from repro.types import PlacementRule
from repro.telemetry import (
    GenerationCompleted,
    MetricsRegistry,
    MigrationPlanned,
    RepairInvoked,
    TabuIteration,
    Tracer,
    WindowClosed,
    capture_events,
    use_registry,
    use_tracer,
)


@pytest.fixture
def infra():
    return Infrastructure.homogeneous(
        datacenters=2, servers_per_datacenter=4, capacity=[16, 64, 500]
    )


def _request(n=3, scale=2.0, groups=()):
    return Request(
        demand=np.full((n, 3), scale) * np.array([1.0, 4.0, 25.0]),
        qos_guarantee=np.full(n, 0.9),
        downtime_cost=np.ones(n),
        migration_cost=np.ones(n),
        groups=tuple(groups),
    )


def _tight_request():
    """Big enough, with anti-affinity, that random NSGA genomes start
    infeasible and the repair path actually fires."""
    return _request(
        n=8,
        scale=4.0,
        groups=(PlacementGroup(PlacementRule.DIFFERENT_SERVERS, (0, 1, 2, 3)),),
    )


def _allocator(evaluations=120):
    return NSGA3TabuAllocator(
        NSGAConfig(population_size=12, max_evaluations=evaluations, seed=7)
    )


class TestNSGAInstrumentation:
    def test_generation_events_are_contiguous(self, infra):
        registry = MetricsRegistry()
        with use_registry(registry), capture_events() as sink:
            outcome = _allocator().allocate(infra, [_request()])
        generations = sink.of(GenerationCompleted)
        assert generations, "NSGA-III run emitted no GenerationCompleted"
        assert [e.generation for e in generations] == list(
            range(len(generations))
        )
        last = generations[-1]
        assert last.algorithm == "nsga3"
        assert last.evaluations == outcome.evaluations
        assert 0.0 <= last.feasible_fraction <= 1.0
        assert last.best_aggregate <= last.mean_aggregate

        snapshot = registry.snapshot()
        assert snapshot.counters["nsga.generations{algorithm=nsga3}"] == (
            generations[-1].generation
        )
        assert snapshot.counters["nsga.evaluations{algorithm=nsga3}"] == (
            outcome.evaluations
        )
        assert snapshot.histograms["nsga.run_seconds{algorithm=nsga3}"].count == 1

    def test_generation_spans_when_tracing(self, infra):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            _allocator().allocate(infra, [_request()])
        names = [r.name for root in tracer.roots for r in root.walk()]
        assert "nsga3.generation" in names
        assert "ea.repair" in names

    def test_repair_events_emitted(self, infra):
        with capture_events() as sink:
            _allocator().allocate(infra, [_tight_request()])
        repairs = sink.of(RepairInvoked)
        assert repairs
        assert {e.repairer for e in repairs} == {"tabu"}
        assert all(e.moves >= 0 for e in repairs)


class TestTabuInstrumentation:
    def test_search_emits_iterations_and_counters(self, infra):
        request = _request(n=4, scale=3.0)
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, infra.m, size=4)
        registry = MetricsRegistry()
        with use_registry(registry), capture_events() as sink:
            evaluator = PopulationEvaluator(infra, request)
            search = TabuSearch(evaluator, max_iterations=10, seed=1)
            search.run(assignment)
        iterations = sink.of(TabuIteration)
        assert iterations
        assert [e.iteration for e in iterations] == list(
            range(1, len(iterations) + 1)
        )
        assert all(e.moves_evaluated >= 0 for e in iterations)
        snapshot = registry.snapshot()
        assert snapshot.counters["tabu.search.iterations"] == len(iterations)
        assert snapshot.histograms["tabu.search.seconds"].count == 1

    def test_repair_counts_individuals_and_moves(self, infra):
        # Pile everything on one server so RAM (6 * 12 > 64) overloads
        # and the repair loop has real work.
        request = _request(n=6, scale=3.0)
        assignment = np.zeros(6, dtype=np.int64)
        registry = MetricsRegistry()
        with use_registry(registry), capture_events() as sink:
            repairer = TabuRepair(infra, request, seed=2)
            repairer.repair_genome(assignment)
        [event] = sink.of(RepairInvoked)
        assert event.repairer == "tabu"
        snapshot = registry.snapshot()
        assert snapshot.counters["tabu.repair.individuals{repairer=tabu}"] == 1
        moves_key = "tabu.repair.moves{repairer=tabu}"
        assert snapshot.counters.get(moves_key, 0.0) == event.moves


class TestCPInstrumentation:
    def test_solve_counters(self, infra):
        registry = MetricsRegistry()
        with use_registry(registry):
            solver = CPSolver(
                infra, _request(), limits=SearchLimits(max_nodes=10_000)
            )
            solution = solver.find_feasible()
        assert solution.assignment is not None
        stats = solution.stats
        snapshot = registry.snapshot()
        assert snapshot.counters["cp.solves"] == 1
        assert snapshot.counters["cp.nodes"] == stats.nodes >= 1
        assert snapshot.counters.get("cp.backtracks", 0.0) == stats.backtracks
        assert snapshot.counters["cp.solutions"] == stats.solutions
        assert snapshot.histograms["cp.solve_seconds"].count == 1


class TestSchedulerInstrumentation:
    def test_window_counters_accumulate(self, infra):
        registry = MetricsRegistry()
        scheduler = TimeWindowScheduler(infra, FirstFitAllocator())
        with use_registry(registry), capture_events() as sink:
            scheduler.submit("a", _request(), at=0.0)
            scheduler.submit("b", _request(), at=1.0)
            scheduler.schedule_departure("a", at=1.5)
            for _ in scheduler.run():
                pass
        closed = sink.of(WindowClosed)
        assert [e.window_index for e in closed] == list(range(len(closed)))
        snapshot = registry.snapshot()
        assert snapshot.counters["scheduler.windows"] == len(closed)
        assert snapshot.counters["scheduler.arrivals"] == 2
        assert snapshot.counters["scheduler.departures"] == 1
        assert snapshot.counters["scheduler.accepted"] == sum(
            e.accepted for e in closed
        )

    def test_reoptimize_emits_migration_planned(self, infra):
        registry = MetricsRegistry()
        scheduler = TimeWindowScheduler(infra, _allocator(evaluations=96))
        with use_registry(registry), capture_events() as sink:
            scheduler.submit("a", _request(), at=0.0)
            scheduler.submit("b", _request(), at=0.0)
            scheduler.run_window()
            result = scheduler.reoptimize()
        assert result is not None
        [event] = sink.of(MigrationPlanned)
        assert event.tenants == 2
        assert event.moves >= 0
        assert event.cost >= 0.0
        snapshot = registry.snapshot()
        assert snapshot.counters["scheduler.reoptimizations"] == 1
        if event.applied:
            assert snapshot.counters.get("scheduler.migration_moves", 0.0) == (
                event.moves
            )
