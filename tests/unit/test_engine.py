"""Unit tests for the repro.engine package: compiled instances, the
LRU problem cache (including eviction and fingerprint-collision
handling) and the incremental evaluator's contract."""

import numpy as np
import pytest

from repro.engine import CompiledProblem, ProblemCache
from repro.model import Request
from repro.objectives import PopulationEvaluator


def _scaled_request(request: Request, factor: float) -> Request:
    """A structurally identical request with scaled demand."""
    return Request(
        demand=request.demand * factor,
        qos_guarantee=request.qos_guarantee,
        downtime_cost=request.downtime_cost,
        migration_cost=request.migration_cost,
        groups=request.groups,
        schema=request.schema,
    )


class TestCompiledProblem:
    def test_precomputed_facts(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        assert compiled.n == small_request.n
        assert compiled.m == small_infra.m
        assert np.array_equal(
            compiled.effective_capacity, small_infra.effective_capacity
        )
        assert np.allclose(
            compiled.per_resource_rate,
            small_infra.operating_cost + small_infra.usage_cost,
        )
        assert compiled.compile_seconds >= 0.0

    def test_group_indexes(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        # Groups: SAME_SERVER (0, 1) and DIFFERENT_SERVERS (2, 3).
        assert compiled.member_groups[0] == (0,)
        assert compiled.member_groups[2] == (1,)
        assert compiled.member_groups[4] == ()
        assert compiled.vm_group_slots[1] == ((0, 1),)
        assert compiled.vm_group_slots[3] == ((1, 1),)

    def test_fingerprint_stable_and_content_sensitive(
        self, small_infra, small_request
    ):
        a = CompiledProblem.fingerprint_of(small_infra, small_request)
        b = CompiledProblem.fingerprint_of(small_infra, small_request)
        assert a == b
        changed = _scaled_request(small_request, 1.5)
        assert CompiledProblem.fingerprint_of(small_infra, changed) != a

    def test_constraint_set_shares_prebuilt_groups(
        self, small_infra, small_request
    ):
        compiled = CompiledProblem.compile(small_infra, small_request)
        first = compiled.constraint_set()
        second = compiled.constraint_set(include_assignment=False)
        for built in (first, second):
            for prebuilt, used in zip(
                compiled.group_constraints, built.group_constraints
            ):
                assert prebuilt is used

    def test_bound_evaluator_matches_plain(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        bound = compiled.evaluator(include_assignment_constraint=True)
        plain = PopulationEvaluator(
            small_infra, small_request, include_assignment_constraint=True
        )
        rng = np.random.default_rng(0)
        for _ in range(5):
            genome = rng.integers(0, small_infra.m, size=small_request.n)
            b_obj, b_viol = bound.assess(genome)
            p_obj, p_viol = plain.assess(genome)
            assert b_viol == p_viol
            assert np.allclose(b_obj.as_array(), p_obj.as_array())

    def test_matches_rejects_different_shape(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        assert compiled.matches(small_infra, small_request)
        shrunk = Request(
            demand=small_request.demand[:4],
            qos_guarantee=small_request.qos_guarantee[:4],
            downtime_cost=small_request.downtime_cost[:4],
            migration_cost=small_request.migration_cost[:4],
            schema=small_request.schema,
        )
        assert not compiled.matches(small_infra, shrunk)


class TestProblemCache:
    def test_hit_returns_same_object(self, small_infra, small_request):
        cache = ProblemCache()
        first = cache.get(small_infra, small_request)
        second = cache.get(small_infra, small_request)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_eviction(self, small_infra, small_request):
        cache = ProblemCache(maxsize=2)
        requests = [_scaled_request(small_request, f) for f in (1.0, 1.1, 1.2)]
        compiled = [cache.get(small_infra, r) for r in requests]
        assert len(cache) == 2
        assert cache.evictions == 1
        assert compiled[0].fingerprint not in cache
        assert compiled[2].fingerprint in cache
        # Re-requesting the evicted instance recompiles.
        again = cache.get(small_infra, requests[0])
        assert again is not compiled[0]
        assert cache.misses == 4

    def test_lru_order_refreshed_by_hits(self, small_infra, small_request):
        cache = ProblemCache(maxsize=2)
        a, b, c = (_scaled_request(small_request, f) for f in (1.0, 1.1, 1.2))
        cache.get(small_infra, a)
        cache.get(small_infra, b)
        kept = cache.get(small_infra, a)  # refresh a → b becomes LRU
        cache.get(small_infra, c)
        assert kept.fingerprint in cache
        assert CompiledProblem.fingerprint_of(small_infra, b) not in cache

    def test_fingerprint_collision_recompiles(
        self, small_infra, small_request, monkeypatch
    ):
        """Two structurally different instances hashing to the same key
        must never share a compilation."""
        monkeypatch.setattr(
            CompiledProblem, "fingerprint_of", staticmethod(lambda i, r: "same")
        )
        cache = ProblemCache()
        other = Request(
            demand=small_request.demand[:4],
            qos_guarantee=small_request.qos_guarantee[:4],
            downtime_cost=small_request.downtime_cost[:4],
            migration_cost=small_request.migration_cost[:4],
            schema=small_request.schema,
        )
        first = cache.get(small_infra, small_request)
        second = cache.get(small_infra, other)
        assert cache.collisions == 1
        assert first.n == small_request.n
        assert second.n == other.n
        # The slot now holds the recompiled instance.
        third = cache.get(small_infra, other)
        assert third is second
        assert cache.hits == 1

    def test_maxsize_validated(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ProblemCache(maxsize=0)

    def test_clear_keeps_counters(self, small_infra, small_request):
        cache = ProblemCache()
        cache.get(small_infra, small_request)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


class TestIncrementalEvaluator:
    def test_initial_state_matches_full_evaluation(
        self, small_infra, small_request
    ):
        compiled = CompiledProblem.compile(small_infra, small_request)
        rng = np.random.default_rng(1)
        genome = rng.integers(0, small_infra.m, size=small_request.n)
        state = compiled.incremental(genome)
        objectives, violations = compiled.evaluator().assess(genome)
        assert state.violations == violations
        assert np.allclose(state.objectives, objectives.as_array())

    def test_score_move_does_not_mutate(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        genome = np.array([0, 0, 2, 3, 4, 5])
        state = compiled.incremental(genome)
        before = state.assignment.copy()
        before_obj = state.objectives.copy()
        state.score_move(4, 7)
        assert np.array_equal(state.assignment, before)
        assert np.array_equal(state.objectives, before_obj)

    def test_apply_move_tracks_full_evaluation(
        self, small_infra, small_request
    ):
        compiled = CompiledProblem.compile(small_infra, small_request)
        evaluator = compiled.evaluator()
        rng = np.random.default_rng(2)
        genome = rng.integers(0, small_infra.m, size=small_request.n)
        state = compiled.incremental(genome)
        for _ in range(30):
            vm = int(rng.integers(0, small_request.n))
            srv = int(rng.integers(0, small_infra.m))
            score = state.score_move(vm, srv)
            applied = state.apply_move(vm, srv)
            assert applied.violations == score.violations
            assert np.allclose(applied.objectives, score.objectives)
            objectives, violations = evaluator.assess(state.assignment)
            assert state.violations == violations
            assert np.allclose(
                state.objectives, objectives.as_array(), rtol=1e-9, atol=1e-9
            )

    def test_verify_passes_and_detects_drift(self, small_infra, small_request):
        from repro.engine import ParityError

        compiled = CompiledProblem.compile(small_infra, small_request)
        genome = np.array([0, 0, 2, 3, 4, 5])
        state = compiled.incremental(genome)
        state.verify()  # healthy state
        state._cap_total += 3  # corrupt the tracked violation total
        with pytest.raises(ParityError):
            state.verify()

    def test_unplaced_moves_and_assignment_constraint(
        self, small_infra, small_request
    ):
        from repro.model.placement import UNPLACED

        compiled = CompiledProblem.compile(small_infra, small_request)
        genome = np.array([0, 0, 2, 3, 4, 5])
        state = compiled.incremental(genome, include_assignment=True)
        base = state.violations
        state.apply_move(5, UNPLACED)
        assert state.violations == base + 1
        state.verify()
        state.apply_move(5, 5)
        assert state.violations == base
        state.verify()

    def test_migration_objective_delta(self, small_infra, small_request):
        compiled = CompiledProblem.compile(small_infra, small_request)
        previous = np.array([0, 0, 2, 3, 4, 5])
        state = compiled.incremental(
            previous.copy(), previous_assignment=previous
        )
        assert state.objectives[2] == 0.0
        state.apply_move(4, 6)
        assert state.objectives[2] == pytest.approx(
            float(small_request.migration_cost[4])
        )
        state.verify()
        state.apply_move(4, 4)  # moving back cancels the charge
        assert state.objectives[2] == 0.0
