"""Unit tests for the filter-and-weigh scheduler baseline."""

import numpy as np
import pytest

from repro.baselines import FilterSchedulerAllocator
from repro.errors import ValidationError
from repro.model import Request
from repro.workloads import ScenarioGenerator, ScenarioSpec


def _one_vm():
    return Request(
        demand=np.ones((1, 3)),
        qos_guarantee=np.array([0.9]),
        downtime_cost=np.array([1.0]),
        migration_cost=np.array([1.0]),
    )


class TestFilterScheduler:
    def test_never_violates(self, small_infra, small_request):
        outcome = FilterSchedulerAllocator().allocate(
            small_infra, [small_request, small_request]
        )
        assert outcome.violations == 0

    def test_cost_only_picks_cheapest(self, small_infra):
        allocator = FilterSchedulerAllocator(
            free_capacity_weight=0.0, cost_weight=1.0
        )
        outcome = allocator.allocate(small_infra, [_one_vm()])
        rate = small_infra.operating_cost + small_infra.usage_cost
        assert rate[outcome.assignment[0]] == rate.min()

    def test_capacity_only_picks_roomiest(self, small_infra):
        allocator = FilterSchedulerAllocator(
            free_capacity_weight=1.0, cost_weight=0.0
        )
        outcome = allocator.allocate(small_infra, [_one_vm()])
        # The big boxes (servers 2, 3, 6, 7) have the most free room.
        assert outcome.assignment[0] in (2, 3, 6, 7)

    def test_weights_trade_off(self, small_infra):
        # In small_infra the cheap servers are the small ones, so the
        # two single-weigher extremes pick different servers.
        cheap = FilterSchedulerAllocator(0.0, 1.0).allocate(
            small_infra, [_one_vm()]
        )
        roomy = FilterSchedulerAllocator(1.0, 0.0).allocate(
            small_infra, [_one_vm()]
        )
        assert cheap.assignment[0] != roomy.assignment[0]

    def test_weight_validation(self):
        with pytest.raises(ValidationError):
            FilterSchedulerAllocator(-1.0, 1.0)
        with pytest.raises(ValidationError):
            FilterSchedulerAllocator(0.0, 0.0)

    def test_respects_affinity(self, small_infra, small_request):
        outcome = FilterSchedulerAllocator().allocate(small_infra, [small_request])
        if outcome.accepted[0]:
            genome = outcome.assignment
            assert genome[0] == genome[1]
            assert genome[2] != genome[3]

    def test_on_generated_scenarios(self):
        spec = ScenarioSpec(servers=20, datacenters=2, vms=40, tightness=0.6)
        scenario = ScenarioGenerator(spec, seed=6).generate()
        outcome = FilterSchedulerAllocator().allocate(
            scenario.infrastructure, scenario.requests
        )
        assert outcome.violations == 0
        assert outcome.rejection_rate <= 0.5
