"""Doc-drift guard: every ``python -m repro …`` command the docs show
must parse against the real argparse tree.

Docs rot silently: a renamed flag or retired subcommand leaves README
snippets that fail for anyone who pastes them.  This test extracts
every fenced command from README.md and docs/*.md and runs it through
:func:`repro.cli.build_parser` (parse only — nothing is executed), so
renaming ``--checkpoint-dir`` without updating the docs fails CI.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Fence info-strings whose contents are shell commands worth checking.
_SHELL_FENCES = {"bash", "sh", "shell", "console", ""}

_FENCE_RE = re.compile(r"^```(\S*)\s*$")


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [path for path in files if path.exists()]


def _shell_blocks(text: str):
    """Yield the lines of each shell-flavoured fenced code block."""
    inside = False
    shell = False
    block: list[str] = []
    for line in text.splitlines():
        match = _FENCE_RE.match(line.strip())
        if match:
            if inside:
                if shell:
                    yield block
                inside = False
                block = []
            else:
                inside = True
                shell = match.group(1).lower() in _SHELL_FENCES
            continue
        if inside and shell:
            block.append(line)


def _join_continuations(lines: list[str]) -> list[str]:
    joined: list[str] = []
    buffer = ""
    for line in lines:
        stripped = line.strip()
        if stripped.endswith("\\"):
            buffer += stripped[:-1] + " "
            continue
        joined.append(buffer + stripped)
        buffer = ""
    if buffer:
        joined.append(buffer.strip())
    return joined


def documented_commands() -> list[tuple[str, str]]:
    """All ``python -m repro …`` commands found in the docs, as
    (source-file:line-agnostic label, command) pairs."""
    commands: list[tuple[str, str]] = []
    for path in _doc_files():
        for block in _shell_blocks(path.read_text()):
            for command in _join_continuations(block):
                if command.startswith("python -m repro"):
                    commands.append((path.name, command))
    return commands


_COMMANDS = documented_commands()


def _parse(command: str):
    """Parse a documented command against the real CLI tree."""
    tokens = shlex.split(command, comments=True)
    # Drop the "python -m repro" prefix; argparse sees the rest.
    return build_parser().parse_args(tokens[3:])


class TestDocsMatchCli:
    def test_docs_actually_contain_commands(self):
        """The extractor itself must not silently rot: the docs carry
        at least a dozen runnable commands today."""
        assert len(_COMMANDS) >= 10, _COMMANDS

    @pytest.mark.parametrize(
        "source,command", _COMMANDS, ids=[f"{s}:{c}" for s, c in _COMMANDS]
    )
    def test_documented_command_parses(self, source, command):
        try:
            self_args = _parse(command)
        except SystemExit:
            pytest.fail(
                f"{source} documents a command the CLI rejects: {command!r}"
            )
        assert self_args.func is not None

    def test_market_docs_are_covered(self):
        """docs/MARKET.md ships runnable brokering commands; the glob in
        :func:`_doc_files` must keep picking them up."""
        market_commands = [c for s, c in _COMMANDS if s == "MARKET.md"]
        assert len(market_commands) >= 3, market_commands
        assert any("--providers" in c for c in market_commands)
        assert any("--prefer" in c for c in market_commands)

    def test_guard_catches_invented_flag(self, capsys):
        """Sanity check on the guard itself: a flag that does not exist
        must fail parsing (otherwise this whole test proves nothing)."""
        with pytest.raises(SystemExit):
            _parse("python -m repro fig9 --no-such-flag-ever")
        capsys.readouterr()  # swallow argparse's usage message

    def test_guard_catches_invented_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            _parse("python -m repro frobnicate")
        capsys.readouterr()


class TestMarketFlags:
    """The new brokering flags must parse — and reject garbage — exactly
    as docs/MARKET.md promises."""

    def test_providers_and_prefer_parse(self):
        args = _parse(
            "python -m repro compare --providers 3 --prefer 'qos>provider_cost'"
        )
        assert args.providers == 3
        assert args.prefer is not None
        # Named criteria lead; omitted ones pad the tail as tie-breakers.
        assert args.prefer.columns == (1, 0, 2)

    def test_scenario_run_accepts_providers(self):
        args = _parse(
            "python -m repro scenario run steady_churn --providers 2 --seed 7"
        )
        assert args.providers == 2

    def test_prefer_default_is_ideal_point(self):
        args = _parse("python -m repro compare")
        assert args.prefer is None
        assert args.providers == 1

    def test_malformed_prefer_rejected(self, capsys):
        for spec in ("", "qos>>cost", "qos>karma", "cost>provider_cost"):
            with pytest.raises(SystemExit):
                _parse(f"python -m repro compare --prefer {spec!r}")
            capsys.readouterr()

    def test_nonpositive_providers_rejected(self, capsys):
        for count in ("0", "-1", "two"):
            with pytest.raises(SystemExit):
                _parse(f"python -m repro compare --providers {count}")
            capsys.readouterr()

    def test_verify_check_market_parses(self):
        args = _parse("python -m repro verify --check-market")
        assert args.check_market is True
