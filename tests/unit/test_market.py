"""Unit tests for the market layer: preference orders, price books,
market partitioning/compilation, the brokered allocator, the
market-layer invariants and the ``verify --check-market`` checker."""

import numpy as np
import pytest

from repro.baselines import RoundRobinAllocator
from repro.ea import NSGAConfig
from repro.errors import ValidationError
from repro.market import (
    BrokeredAllocator,
    PriceBook,
    Provider,
    ProviderMarket,
)
from repro.market.preferences import (
    PREFERENCE_CRITERIA,
    active_preference,
    parse_preference,
    select_index,
    set_preference,
)
from repro.model.placement import UNPLACED
from repro.utils.pareto import dominance_matrix
from repro.verify import (
    CheckContext,
    check_market_conformance,
    invariant_names,
    run_invariants,
)
from repro.workloads import ScenarioGenerator, ScenarioSpec


@pytest.fixture()
def scenario():
    spec = ScenarioSpec(
        servers=12, datacenters=3, vms=10, max_request_size=3, tightness=0.5
    )
    return ScenarioGenerator(spec, seed=11).generate()


@pytest.fixture(autouse=True)
def _clear_active_preference():
    yield
    set_preference(None)


# ----------------------------------------------------------------------
# Preference parsing
# ----------------------------------------------------------------------
class TestParsePreference:
    def test_full_spec_round_trips(self):
        order = parse_preference("qos>provider_cost>migration")
        assert order.criteria == ("qos", "provider_cost", "migration")
        assert order.columns == (1, 0, 2)
        assert parse_preference(order.spec) == order

    def test_partial_spec_pads_canonical_tail(self):
        order = parse_preference("migration")
        assert order.columns == (2, 0, 1)

    def test_aliases_and_case_fold(self):
        assert parse_preference("DOWNTIME>Energy").columns == (1, 0, 2)

    @pytest.mark.parametrize(
        "spec", ["", "   ", "qos>>cost", ">qos", "qos>"]
    )
    def test_empty_or_torn_specs_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_preference(spec)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValidationError, match="karma"):
            parse_preference("qos>karma")

    def test_duplicate_column_via_alias_rejected(self):
        # 'cost' and 'energy' both alias objective column 0.
        with pytest.raises(ValidationError, match="repeats"):
            parse_preference("cost>qos>energy")

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError):
            parse_preference(None)

    def test_nsga_config_validates_preference_eagerly(self):
        with pytest.raises(ValidationError):
            NSGAConfig(preference="qos>bogus")
        assert NSGAConfig(preference="qos>cost").preference == "qos>cost"


# ----------------------------------------------------------------------
# Preference selection
# ----------------------------------------------------------------------
class TestSelection:
    FRONT = np.array(
        [
            [3.0, 1.0, 5.0],
            [1.0, 4.0, 2.0],
            [1.0, 3.0, 9.0],
            [2.0, 2.0, 1.0],
        ]
    )

    def test_lexicographic_minimum_wins(self):
        # cost first: rows 1 and 2 tie at 1.0; qos breaks the tie.
        assert parse_preference("cost>qos").select(self.FRONT) == 2
        assert parse_preference("qos").select(self.FRONT) == 0
        assert parse_preference("migration").select(self.FRONT) == 3

    def test_duplicate_rows_pick_lowest_index(self):
        front = np.array([[2.0, 2.0, 2.0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        assert parse_preference("cost").select(front) == 1

    def test_none_is_ideal_point(self):
        # Normalized ideal-point distance: row 3 balances all axes.
        idx = select_index(self.FRONT, None)
        lo = self.FRONT.min(axis=0)
        span = np.where(
            (self.FRONT.max(axis=0) - lo) > 0, self.FRONT.max(axis=0) - lo, 1.0
        )
        normalized = (self.FRONT - lo) / span
        assert idx == int(np.argmin(np.sqrt((normalized**2).sum(axis=1))))

    def test_empty_front_rejected(self):
        with pytest.raises(ValidationError):
            select_index(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            parse_preference("qos").select(np.empty((0, 3)))

    def test_active_preference_lifecycle(self):
        assert active_preference() is None
        installed = set_preference("qos>cost")
        assert active_preference() is installed
        assert set_preference(None) is None
        assert active_preference() is None

    def test_criteria_table_spans_all_columns(self):
        assert set(PREFERENCE_CRITERIA.values()) == {0, 1, 2}


# ----------------------------------------------------------------------
# Price books
# ----------------------------------------------------------------------
class TestPriceBook:
    def test_neutral_default(self):
        book = PriceBook()
        assert book.is_neutral
        assert book.price_at(13.0) == (1.0, 1.0)

    def test_diurnal_curve_oscillates(self):
        book = PriceBook(curve="diurnal", amplitude=0.2, period=24.0)
        assert book.multiplier_at(6.0) == pytest.approx(1.2)
        assert book.multiplier_at(18.0) == pytest.approx(0.8)
        assert book.multiplier_at(0.0) == pytest.approx(1.0)

    def test_trend_curve_grows_linearly(self):
        book = PriceBook(curve="trend", amplitude=0.5, period=10.0)
        assert book.multiplier_at(10.0) == pytest.approx(1.5)

    def test_static_rates_scale_the_dynamic_factor(self):
        book = PriceBook(operating_rate=2.0, usage_rate=0.5)
        assert book.price_at(3.0) == (2.0, 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"operating_rate": -0.1},
            {"usage_rate": -1.0},
            {"curve": "random_walk"},
            {"period": 0.0},
            {"curve": "diurnal", "amplitude": 1.0},
            {"curve": "trend", "amplitude": -0.2},
        ],
    )
    def test_invalid_books_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            PriceBook(**kwargs)


# ----------------------------------------------------------------------
# Market partitioning and compilation
# ----------------------------------------------------------------------
class TestProviderMarket:
    def test_single_provider_compiles_byte_identical(self, scenario):
        infra = scenario.infrastructure
        compiled = ProviderMarket.from_infrastructure(infra, 1).compile(at=5.0)
        merged = compiled.infrastructure
        assert merged.p == 1
        assert merged.server_provider is None
        np.testing.assert_array_equal(merged.capacity, infra.capacity)
        np.testing.assert_array_equal(merged.usage_cost, infra.usage_cost)
        np.testing.assert_array_equal(
            merged.operating_cost, infra.operating_cost
        )
        np.testing.assert_array_equal(
            merged.server_datacenter, infra.server_datacenter
        )

    def test_partition_covers_every_server_once(self, scenario):
        infra = scenario.infrastructure
        market = ProviderMarket.from_infrastructure(infra, 3)
        sizes = [p.infrastructure.m for p in market.providers]
        assert sum(sizes) == infra.m
        assert all(size >= 1 for size in sizes)
        merged = market.compile(at=0.0).infrastructure
        assert merged.m == infra.m
        assert merged.p == 3
        counts = np.bincount(merged.server_provider, minlength=3)
        assert counts.tolist() == sizes

    def test_fewer_datacenters_than_providers_deals_servers(self, scenario):
        infra = scenario.infrastructure  # 3 datacenters
        market = ProviderMarket.from_infrastructure(infra, 5)
        sizes = [p.infrastructure.m for p in market.providers]
        assert sum(sizes) == infra.m
        assert all(size >= 1 for size in sizes)

    def test_cannot_split_past_server_count(self, scenario):
        with pytest.raises(ValidationError, match="cannot split"):
            ProviderMarket.from_infrastructure(
                scenario.infrastructure, scenario.infrastructure.m + 1
            )

    def test_mismatched_books_or_names_rejected(self, scenario):
        infra = scenario.infrastructure
        with pytest.raises(ValidationError):
            ProviderMarket.from_infrastructure(
                infra, 2, price_books=[PriceBook()]
            )
        with pytest.raises(ValidationError):
            ProviderMarket.from_infrastructure(infra, 2, names=("only-one",))

    def test_duplicate_provider_names_rejected(self, scenario):
        infra = scenario.infrastructure
        provider = Provider(name="acme", infrastructure=infra)
        with pytest.raises(ValidationError, match="duplicate"):
            ProviderMarket([provider, provider])

    def test_compile_scales_cost_vectors_by_price_book(self, scenario):
        infra = scenario.infrastructure
        books = [
            PriceBook(operating_rate=1.0, usage_rate=1.0),
            PriceBook(operating_rate=2.0, usage_rate=3.0),
        ]
        market = ProviderMarket.from_infrastructure(
            infra, 2, price_books=books
        )
        compiled = market.compile(at=0.0)
        merged = compiled.infrastructure
        for k, provider in enumerate(market.providers):
            rows = merged.servers_in_provider(k)
            np.testing.assert_allclose(
                merged.usage_cost[rows],
                provider.infrastructure.usage_cost * books[k].usage_rate,
            )
            np.testing.assert_allclose(
                merged.operating_cost[rows],
                provider.infrastructure.operating_cost
                * books[k].operating_rate,
            )
        assert compiled.prices == ((1.0, 1.0), (2.0, 3.0))

    def test_dynamic_prices_move_with_time(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 2)
        morning = market.compile(at=6.0).infrastructure.usage_cost
        evening = market.compile(at=18.0).infrastructure.usage_cost
        assert not np.array_equal(morning, evening)


# ----------------------------------------------------------------------
# The brokered allocator
# ----------------------------------------------------------------------
class TestBrokeredAllocator:
    @pytest.fixture()
    def brokered(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
        broker = BrokeredAllocator(market, RoundRobinAllocator)
        return broker.allocate(scenario.requests, at=0.0)

    def test_one_plan_per_provider_plus_split(self, brokered):
        routes = [plan.route for plan in brokered.plans]
        assert routes == [
            "provider:provider0",
            "provider:provider1",
            "provider:provider2",
            "split",
        ]

    def test_provider_routes_are_confined(self, brokered):
        provider_of_server = brokered.instance.infrastructure.provider_of_server
        for k, plan in enumerate(brokered.plans[:-1]):
            placed = plan.outcome.assignment[
                plan.outcome.assignment != UNPLACED
            ]
            if placed.size:
                assert (provider_of_server[placed] == k).all(), plan.route

    def test_front_is_mutually_nondominated(self, brokered):
        objs = brokered.front_objectives
        assert len(brokered.front) >= 1
        assert not dominance_matrix(objs).any()

    def test_deployed_is_a_front_member(self, brokered):
        assert any(plan is brokered.deployed for plan in brokered.front)
        assert brokered.preference_spec is None

    def test_broker_is_deterministic(self, scenario, brokered):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
        again = BrokeredAllocator(market, RoundRobinAllocator).allocate(
            scenario.requests, at=0.0
        )
        np.testing.assert_array_equal(
            again.deployed.outcome.assignment,
            brokered.deployed.outcome.assignment,
        )
        assert again.deployed.route == brokered.deployed.route

    def test_explicit_preference_is_recorded(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
        broker = BrokeredAllocator(
            market,
            RoundRobinAllocator,
            preference=parse_preference("qos>cost"),
        )
        outcome = broker.allocate(scenario.requests, at=0.0)
        assert outcome.preference_spec == "qos>cost"
        # The qos-first pick minimizes column 1 over the front.
        qos = outcome.front_objectives[:, 1]
        assert outcome.deployed.objectives[1] == qos.min()

    def test_empty_bundle_rejected(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 2)
        with pytest.raises(ValidationError):
            BrokeredAllocator(market, RoundRobinAllocator).allocate([])

    def test_quota_count_must_match_providers(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 2)
        with pytest.raises(ValidationError):
            BrokeredAllocator(market, RoundRobinAllocator, quotas=(1, 2, 3))


# ----------------------------------------------------------------------
# Market invariants + the conformance checker
# ----------------------------------------------------------------------
class TestMarketVerification:
    def test_market_invariants_are_registered(self):
        assert {
            "provider_capacity_closure",
            "preference_selection_consistency",
            "brokered_front_non_domination",
        } <= set(invariant_names())

    def test_invariants_pass_on_brokered_outcome(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
        outcome = BrokeredAllocator(market, RoundRobinAllocator).allocate(
            scenario.requests, at=0.0
        )
        ctx = CheckContext(
            infrastructure=outcome.instance.infrastructure,
            requests=scenario.requests,
            outcome=outcome.deployed.outcome,
            front_objectives=outcome.front_objectives,
            brokered=outcome,
        )
        report = run_invariants(ctx)
        assert report.ok, report.format()
        assert "provider_capacity_closure" in report.checked
        assert "brokered_front_non_domination" in report.checked

    def test_front_invariant_flags_foreign_deployed_plan(self, scenario):
        market = ProviderMarket.from_infrastructure(scenario.infrastructure, 3)
        outcome = BrokeredAllocator(market, RoundRobinAllocator).allocate(
            scenario.requests, at=0.0
        )
        impostor = outcome.plans[0]
        if impostor is outcome.deployed:
            impostor = outcome.plans[1]
        survivors = tuple(
            plan for plan in outcome.front if plan is not outcome.deployed
        )
        object.__setattr__(outcome, "front", survivors or (impostor,))
        ctx = CheckContext(
            infrastructure=outcome.instance.infrastructure,
            requests=scenario.requests,
            brokered=outcome,
        )
        report = run_invariants(ctx, names=["brokered_front_non_domination"])
        assert not report.ok

    def test_check_market_conformance_is_green(self):
        report = check_market_conformance(seed=3)
        assert report.ok, report.format()
        assert report.comparisons > 0
        assert list(report.mismatches) == []
