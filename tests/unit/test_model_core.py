"""Unit tests for the model layer: attributes, resources, infrastructure."""

import numpy as np
import pytest

from repro.errors import DimensionError, ValidationError
from repro.model import (
    AttributeSchema,
    DEFAULT_ATTRIBUTES,
    Datacenter,
    Infrastructure,
    Server,
    VirtualResource,
)


class TestAttributeSchema:
    def test_default_is_cpu_ram_disk(self):
        assert DEFAULT_ATTRIBUTES.names == ("cpu", "ram", "disk")
        assert DEFAULT_ATTRIBUTES.h == 3

    def test_index_lookup(self):
        assert DEFAULT_ATTRIBUTES.index("ram") == 1

    def test_unknown_attribute_raises(self):
        with pytest.raises(ValidationError):
            DEFAULT_ATTRIBUTES.index("gpu")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            AttributeSchema(names=("cpu", "cpu"))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            AttributeSchema(names=())

    def test_units_default_to_blank(self):
        schema = AttributeSchema(names=("a", "b"))
        assert schema.units == ("", "")

    def test_units_length_must_match(self):
        with pytest.raises(ValidationError):
            AttributeSchema(names=("a", "b"), units=("x",))

    def test_iteration_and_contains(self):
        schema = AttributeSchema.from_names(["x", "y"])
        assert list(schema) == ["x", "y"]
        assert "x" in schema and "z" not in schema
        assert len(schema) == 2


class TestServer:
    def test_effective_capacity(self):
        server = Server(
            capacity=[10, 20, 30], capacity_factor=[0.5, 1.0, 0.9]
        )
        assert server.effective_capacity.tolist() == [5.0, 20.0, 27.0]

    def test_defaults(self):
        server = Server(capacity=[1, 2, 3])
        assert np.all(server.capacity_factor == 1.0)
        assert np.all(server.max_load == 0.8)

    def test_wrong_capacity_shape(self):
        with pytest.raises(ValidationError):
            Server(capacity=[1, 2])

    def test_factor_range_enforced(self):
        with pytest.raises(ValidationError):
            Server(capacity=[1, 2, 3], capacity_factor=[0.0, 1.0, 1.0])
        with pytest.raises(ValidationError):
            Server(capacity=[1, 2, 3], capacity_factor=[1.5, 1.0, 1.0])

    def test_max_load_must_be_fraction(self):
        with pytest.raises(ValidationError):
            Server(capacity=[1, 2, 3], max_load=[1.0, 0.5, 0.5])


class TestVirtualResource:
    def test_valid(self):
        vr = VirtualResource(demand=[1, 2, 3], qos_guarantee=0.95)
        assert vr.demand.tolist() == [1.0, 2.0, 3.0]

    def test_qos_bounds(self):
        with pytest.raises(ValidationError):
            VirtualResource(demand=[1, 2, 3], qos_guarantee=0.0)
        with pytest.raises(ValidationError):
            VirtualResource(demand=[1, 2, 3], qos_guarantee=1.5)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            VirtualResource(demand=[-1, 2, 3])


class TestDatacenter:
    def test_schema_consistency_enforced(self):
        dc = Datacenter(servers=[Server(capacity=[1, 2, 3])])
        other_schema = AttributeSchema(names=("x",))
        with pytest.raises(ValidationError):
            dc.add(Server(capacity=[1], schema=other_schema))

    def test_len(self):
        dc = Datacenter()
        assert len(dc) == 0
        dc.add(Server(capacity=[1, 2, 3]))
        assert len(dc) == 1


class TestInfrastructure:
    def test_sizes(self, small_infra):
        assert (small_infra.g, small_infra.m, small_infra.h) == (2, 8, 3)

    def test_effective_capacity(self, small_infra):
        expect = small_infra.capacity * small_infra.capacity_factor
        assert np.allclose(small_infra.effective_capacity, expect)

    def test_servers_in_datacenter(self, small_infra):
        assert small_infra.servers_in_datacenter(0).tolist() == [0, 1, 2, 3]
        assert small_infra.servers_in_datacenter(1).tolist() == [4, 5, 6, 7]
        with pytest.raises(ValidationError):
            small_infra.servers_in_datacenter(2)

    def test_datacenter_sizes(self, small_infra):
        assert small_infra.datacenter_sizes().tolist() == [4, 4]

    def test_non_contiguous_dc_ids_rejected(self):
        with pytest.raises(ValidationError):
            Infrastructure(
                capacity=np.ones((2, 3)),
                capacity_factor=np.ones((2, 3)),
                operating_cost=np.ones(2),
                usage_cost=np.ones(2),
                max_load=np.full((2, 3), 0.5),
                max_qos=np.full((2, 3), 0.5),
                server_datacenter=np.array([0, 2]),  # id 1 missing
            )

    def test_homogeneous_constructor(self):
        infra = Infrastructure.homogeneous(
            datacenters=3, servers_per_datacenter=5, capacity=[8, 32, 100]
        )
        assert (infra.g, infra.m) == (3, 15)
        assert np.all(infra.capacity == np.array([8, 32, 100]))

    def test_from_datacenters(self):
        dcs = [
            Datacenter(servers=[Server(capacity=[1, 2, 3], name="a")], name="east"),
            Datacenter(servers=[Server(capacity=[4, 5, 6])]),
        ]
        infra = Infrastructure.from_datacenters(dcs)
        assert infra.m == 2 and infra.g == 2
        assert infra.datacenter_names == ("east", "dc1")
        assert infra.server_names[0] == "a"

    def test_from_empty_datacenter_rejected(self):
        with pytest.raises(ValidationError):
            Infrastructure.from_datacenters([Datacenter()])

    def test_matrix_shape_mismatch(self):
        with pytest.raises(DimensionError):
            Infrastructure(
                capacity=np.ones((2, 3)),
                capacity_factor=np.ones((3, 3)),  # wrong m
                operating_cost=np.ones(2),
                usage_cost=np.ones(2),
                max_load=np.full((2, 3), 0.5),
                max_qos=np.full((2, 3), 0.5),
                server_datacenter=np.array([0, 0]),
            )

    def test_qos_matrix_range(self):
        with pytest.raises(ValidationError):
            Infrastructure(
                capacity=np.ones((1, 3)),
                capacity_factor=np.ones((1, 3)),
                operating_cost=np.ones(1),
                usage_cost=np.ones(1),
                max_load=np.full((1, 3), 1.0),  # must be < 1
                max_qos=np.full((1, 3), 0.5),
                server_datacenter=np.array([0]),
            )
