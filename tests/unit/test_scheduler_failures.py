"""Unit tests for platform failure/recovery events (the paper's
future-work flow events)."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator
from repro.errors import SchedulerError
from repro.model import Request
from repro.scheduler import TimeWindowScheduler
from repro.telemetry import (
    RequestRejected,
    WindowClosed,
    capture_events,
)


def _request(n=2, scale=1.0):
    return Request(
        demand=np.full((n, 3), scale),
        qos_guarantee=np.full(n, 0.9),
        downtime_cost=np.ones(n),
        migration_cost=np.full(n, 7.0),
    )


class TestServerFailure:
    def test_failed_server_receives_nothing(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.schedule_failure(0, at=0.0)
        scheduler.submit("a", _request(), at=0.5)
        report = scheduler.run_window()
        assert report.failures == (0,)
        assert 0 in scheduler.failed_servers
        placed = report.outcome.assignment
        assert 0 not in placed[placed >= 0].tolist()

    def test_failure_displaces_and_replaces_tenants(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(), at=0.0)
        first = scheduler.run_window()
        assert first.accepted == ("a",)
        hosted_on = scheduler.state.previous_assignment("a")
        server = int(hosted_on[0])

        scheduler.schedule_failure(server, at=scheduler.clock + 0.1)
        report = scheduler.run_window()
        assert report.failures == (server,)
        assert report.displaced == ("a",)
        # The tenant was re-placed somewhere legal.
        assert "a" in report.accepted
        new_assignment = scheduler.state.previous_assignment("a")
        assert server not in new_assignment.tolist()
        scheduler.state.verify_consistency()

    def test_displacement_not_charged_as_migration(self, small_infra):
        # All of tenant a sits on one server; when it fails, every gene
        # was on the failed host, so the re-placement books zero
        # migration cost (forced boots, not moves).
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(), at=0.0)
        scheduler.run_window()
        assignment = scheduler.state.previous_assignment("a")
        servers = set(assignment.tolist())
        if len(servers) != 1:
            pytest.skip("tenant spread over several servers")
        scheduler.schedule_failure(assignment[0], at=scheduler.clock + 0.1)
        report = scheduler.run_window()
        assert report.outcome is not None
        assert report.outcome.objectives[2] == pytest.approx(0.0)

    def test_recovery_restores_server(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.schedule_failure(0, at=0.0)
        scheduler.schedule_recovery(0, at=1.5)
        scheduler.submit("late", _request(), at=1.6)
        scheduler.run_window()  # failure
        report = scheduler.run_window()  # recovery + arrival
        assert report.recoveries == (0,)
        assert scheduler.failed_servers == frozenset()
        # First-fit can use server 0 again.
        assert report.outcome.assignment[0] == 0

    def test_duplicate_failure_is_idempotent(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.schedule_failure(3, at=0.0)
        scheduler.schedule_failure(3, at=0.1)
        report = scheduler.run_window()
        assert report.failures == (3,)

    def test_out_of_range_server_rejected(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        with pytest.raises(SchedulerError):
            scheduler.schedule_failure(small_infra.m, at=0.0)
        with pytest.raises(SchedulerError):
            scheduler.schedule_recovery(-1, at=0.0)

    def test_mass_failure_forces_rejections(self, small_infra):
        # Fail every server but one tiny host: displaced tenants cannot
        # all fit and must be rejected, never silently violated.
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        for i in range(3):
            scheduler.submit(f"t{i}", _request(n=4, scale=3.0), at=0.0)
        scheduler.run_window()
        for server in range(1, small_infra.m):
            scheduler.schedule_failure(server, at=scheduler.clock + 0.1)
        report = scheduler.run_window()
        assert report.outcome is None or report.outcome.violations == 0
        scheduler.state.verify_consistency()
        # Whatever is still hosted only uses server 0.
        for key in scheduler.state.tenants():
            assignment = scheduler.state.previous_assignment(key)
            assert set(assignment.tolist()) <= {0}

    def test_failure_recovery_telemetry_event_order(self, small_infra):
        """Failure displaces + re-queues tenants, and the telemetry
        stream reflects the windows in emission order: each window's
        RequestRejected events precede its WindowClosed marker, and
        window indices close in sequence."""
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        with capture_events() as sink:
            # Window 0: two tenants arrive and are hosted.
            scheduler.submit("a", _request(), at=0.0)
            scheduler.submit("b", _request(), at=0.0)
            first = scheduler.run_window()
            assert set(first.accepted) == {"a", "b"}

            # Window 1: the server hosting "a" fails -> displacement.
            server = int(scheduler.state.previous_assignment("a")[0])
            scheduler.schedule_failure(server, at=scheduler.clock + 0.1)
            report = scheduler.run_window()
            assert "a" in report.displaced
            # The displaced tenant re-entered the same window's batch.
            assert ("a" in report.accepted) or ("a" in report.rejected)

            # Window 2: the server recovers.
            scheduler.schedule_recovery(server, at=scheduler.clock + 0.1)
            recovery = scheduler.run_window()
            assert recovery.recoveries == (server,)

        closed = sink.of(WindowClosed)
        assert [e.window_index for e in closed] == [0, 1, 2]
        assert closed[1].failures == 1
        assert closed[1].displaced == len(report.displaced) >= 1
        assert closed[2].recoveries == 1

        # Rejections (if the displaced tenant could not be re-placed)
        # are emitted before their window closes, tagged "displaced".
        for rejected in sink.of(RequestRejected):
            window_close_pos = sink.events.index(
                next(
                    e
                    for e in closed
                    if e.window_index == rejected.window_index
                )
            )
            assert sink.events.index(rejected) < window_close_pos
            if rejected.key == "a":
                assert rejected.reason == "displaced"

    def test_mass_failure_rejections_emit_displaced_reason(self, small_infra):
        """Every server but one fails: displaced tenants that cannot be
        re-hosted are re-queued, rejected, and reported through the bus
        with reason='displaced'."""
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        for i in range(3):
            scheduler.submit(f"t{i}", _request(n=4, scale=3.0), at=0.0)
        scheduler.run_window()
        hosted = set(scheduler.state.tenants())
        with capture_events() as sink:
            for server in range(1, small_infra.m):
                scheduler.schedule_failure(server, at=scheduler.clock + 0.1)
            report = scheduler.run_window()
        assert report.displaced  # someone was hosted off server 0
        rejected = sink.of(RequestRejected)
        # Displaced-but-unplaceable tenants surface as rejections with
        # the displaced reason; fresh-capacity rejections would say
        # "capacity".
        for event in rejected:
            assert event.key in hosted
            assert event.reason == "displaced"
        closed = sink.of(WindowClosed)
        assert len(closed) == 1
        assert closed[0].rejected == len(rejected)
        assert closed[0].failures == small_infra.m - 1

    def test_double_failure_same_window_displaces_once(self, small_infra):
        # A tenant spread over two servers, both of which fail in the
        # same window: the first failure displaces it into the batch,
        # and the second must scrub the batch entry's genes too — one
        # displacement, zero migration charge, no anchoring to the
        # second dead host.
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(scale=10.0), at=0.0)
        first = scheduler.run_window()
        assert first.accepted == ("a",)
        servers = sorted(set(scheduler.state.previous_assignment("a").tolist()))
        if len(servers) < 2:
            pytest.skip("tenant not spread over two servers")

        at = scheduler.clock + 0.1
        for server in servers:
            scheduler.schedule_failure(server, at=at)
        report = scheduler.run_window()
        assert tuple(sorted(report.failures)) == tuple(servers)
        assert report.displaced == ("a",)
        assert "a" in report.accepted
        rehomed = set(scheduler.state.previous_assignment("a").tolist())
        assert not rehomed & set(servers)
        # Both source hosts are gone, so every gene is a forced boot:
        # the migration objective must book zero moves.
        assert report.outcome.objectives[2] == pytest.approx(0.0)
        scheduler.state.verify_consistency()

    def test_failure_then_unrelated_failure_keeps_partial_charge(
        self, small_infra
    ):
        # Control for the scrub: when the second failed server never
        # hosted the displaced tenant, its surviving genes still count
        # as migration sources (the scrub must not over-erase).
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(scale=10.0), at=0.0)
        scheduler.run_window()
        servers = sorted(set(scheduler.state.previous_assignment("a").tolist()))
        if len(servers) < 2:
            pytest.skip("tenant not spread over two servers")
        untouched = [s for s in range(small_infra.m) if s not in servers]

        at = scheduler.clock + 0.1
        scheduler.schedule_failure(servers[0], at=at)
        scheduler.schedule_failure(untouched[0], at=at + 0.1)
        report = scheduler.run_window()
        assert report.displaced == ("a",)
        assert "a" in report.accepted
        # The gene on the surviving source host keeps its identity: if
        # first-fit re-places it on the same server, no move is booked,
        # and either way the platform stays consistent.
        new = set(scheduler.state.previous_assignment("a").tolist())
        assert servers[0] not in new and untouched[0] not in new
        scheduler.state.verify_consistency()

    def test_reoptimize_respects_failed_servers(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(), at=0.0)
        scheduler.submit("b", _request(), at=0.0)
        scheduler.run_window()
        scheduler.schedule_failure(5, at=scheduler.clock + 0.1)
        scheduler.run_window()
        result = scheduler.reoptimize()
        if result is None:
            pytest.skip("nothing hosted")
        outcome, _plan = result
        placed = outcome.assignment[outcome.assignment >= 0]
        assert 5 not in placed.tolist()
