"""Unit tests for the tabu layer: tabu list, neighbour search, repair,
standalone search."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet
from repro.errors import ValidationError
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.tabu import NeighborFinder, TabuList, TabuRepair, TabuSearch


class TestTabuList:
    def test_membership(self):
        tabu = TabuList(tenure=4)
        tabu.add(1, 5)
        assert (1, 5) in tabu
        assert (1, 6) not in tabu

    def test_capacity_evicts_oldest(self):
        tabu = TabuList(tenure=2)
        tabu.add(0, 0)
        tabu.add(1, 1)
        tabu.add(2, 2)
        assert (0, 0) not in tabu
        assert (1, 1) in tabu and (2, 2) in tabu

    def test_readd_refreshes(self):
        tabu = TabuList(tenure=2)
        tabu.add(0, 0)
        tabu.add(1, 1)
        tabu.add(0, 0)  # refresh
        tabu.add(2, 2)
        assert (0, 0) in tabu and (1, 1) not in tabu

    def test_zero_tenure_disables(self):
        tabu = TabuList(tenure=0)
        tabu.add(0, 0)
        assert (0, 0) not in tabu and len(tabu) == 0

    def test_forbidden_servers(self):
        tabu = TabuList(tenure=8)
        tabu.add(3, 1)
        tabu.add(3, 2)
        tabu.add(4, 9)
        assert sorted(tabu.forbidden_servers(3)) == [1, 2]

    def test_clear(self):
        tabu = TabuList(tenure=4)
        tabu.add(0, 0)
        tabu.clear()
        assert len(tabu) == 0

    def test_negative_tenure_rejected(self):
        with pytest.raises(ValidationError):
            TabuList(tenure=-1)


class TestNeighborFinder:
    def test_capacity_mask_credits_current_host(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        assignment = np.array([0, 0, 2, 3, 4, 5])
        usage = ConstraintSet(
            small_infra, small_request, include_assignment=False
        ).capacity.server_usage(assignment)
        mask = finder.capacity_mask(usage, assignment, 0)
        assert mask[0]  # its own host must still be "valid capacity-wise"

    def test_affinity_mask_same_server(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        # VM 0 and 1 are a SAME_SERVER pair; VM 1 sits on server 3.
        assignment = np.array([0, 3, 2, 4, 5, 6])
        mask = finder.affinity_mask(assignment, 0)
        assert mask[3] and mask.sum() == 1

    def test_affinity_mask_different_servers(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        # VMs 2 and 3 must differ; VM 3 on server 4.
        assignment = np.array([0, 0, 2, 4, 5, 6])
        mask = finder.affinity_mask(assignment, 2)
        assert not mask[4] and mask.sum() == small_infra.m - 1

    def test_affinity_mask_no_groups_is_all_true(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        assignment = np.array([0, 0, 2, 4, 5, 6])
        assert finder.affinity_mask(assignment, 5).all()

    def test_find_first_order_returns_lowest_id(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        assignment = np.array([0, 0, 2, 3, 4, 5])
        usage = ConstraintSet(
            small_infra, small_request, include_assignment=False
        ).capacity.server_usage(assignment)
        target = finder.find(usage, assignment, 5, order="first")
        assert target == 0  # server 0 has room and the lowest id

    def test_find_respects_tabu(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        assignment = np.array([0, 0, 2, 3, 4, 5])
        usage = ConstraintSet(
            small_infra, small_request, include_assignment=False
        ).capacity.server_usage(assignment)
        tabu = TabuList(tenure=8)
        tabu.add(5, 0)
        target = finder.find(usage, assignment, 5, tabu=tabu, order="first")
        assert target not in (0, 5)  # 0 is tabu, 5 is current

    def test_find_orders(self, small_infra, small_request):
        finder = NeighborFinder(small_infra, small_request)
        assignment = np.array([0, 0, 2, 3, 4, 5])
        usage = ConstraintSet(
            small_infra, small_request, include_assignment=False
        ).capacity.server_usage(assignment)
        rng = np.random.default_rng(0)
        for order in ("first", "best_fit", "random"):
            target = finder.find(usage, assignment, 5, order=order, rng=rng)
            assert target is not None and target != 5
        with pytest.raises(ValidationError):
            finder.find(usage, assignment, 5, order="bogus")

    def test_find_returns_none_when_nothing_fits(self, small_infra):
        # One VM as big as the largest server: nowhere else to go once
        # its demand is doubled everywhere via base usage.
        request = Request(
            demand=small_infra.effective_capacity[[2]],
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        base = small_infra.effective_capacity * 0.5
        finder = NeighborFinder(small_infra, request, base_usage=base)
        assignment = np.array([2])
        usage = np.zeros_like(base)
        assert finder.find(usage, assignment, 0) is None


class TestTabuRepair:
    def test_feasible_genome_untouched(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=0)
        genome = np.array([0, 0, 2, 3, 4, 5])
        assert np.array_equal(repair.repair_genome(genome), genome)
        assert repair.repaired_individuals == 0

    def test_repairs_affinity_violation(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=0)
        broken = np.array([0, 1, 2, 3, 4, 5])  # same-server pair split
        fixed = repair.repair_genome(broken)
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(fixed) == 0

    def test_repairs_anti_affinity_violation(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=0)
        broken = np.array([0, 0, 2, 2, 4, 5])  # different-servers collided
        fixed = repair.repair_genome(broken)
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(fixed) == 0

    def test_never_increases_violations(self, small_infra, small_request):
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        rng = np.random.default_rng(1)
        repair = TabuRepair(small_infra, small_request, seed=2)
        for _ in range(20):
            genome = rng.integers(0, small_infra.m, size=small_request.n)
            before = constraint_set.violations(genome)
            after = constraint_set.violations(repair.repair_genome(genome))
            assert after <= before

    def test_population_call_only_touches_infeasible(
        self, small_infra, small_request
    ):
        repair = TabuRepair(small_infra, small_request, seed=3)
        feasible = np.array([0, 0, 2, 3, 4, 5])
        broken = np.array([0, 1, 2, 3, 4, 5])
        population = np.vstack([feasible, broken])
        fixed = repair(population)
        assert np.array_equal(fixed[0], feasible)
        assert not np.array_equal(fixed[1], broken)

    def test_genes_stay_in_range(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=4)
        rng = np.random.default_rng(5)
        population = rng.integers(0, small_infra.m, size=(10, small_request.n))
        fixed = repair(population)
        assert fixed.min() >= 0 and fixed.max() < small_infra.m

    def test_max_rounds_validated(self, small_infra, small_request):
        with pytest.raises(ValidationError):
            TabuRepair(small_infra, small_request, max_rounds=0)


class TestTabuSearch:
    def test_improves_random_start(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        search = TabuSearch(evaluator, max_iterations=60, seed=0)
        rng = np.random.default_rng(1)
        start = rng.integers(0, small_infra.m, size=small_request.n)
        start_score = (
            evaluator.violations(start),
            float(evaluator.evaluate(start).aggregate()),
        )
        result = search.run(start)
        end_score = (result.violations, float(result.objectives.sum()))
        assert end_score <= start_score

    def test_result_fields(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        search = TabuSearch(evaluator, max_iterations=10, seed=0)
        result = search.run(np.zeros(small_request.n, dtype=np.int64))
        assert result.assignment.shape == (small_request.n,)
        assert result.objectives.shape == (3,)
        assert result.evaluations > 0 and result.elapsed >= 0

    def test_wrong_start_shape_rejected(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        search = TabuSearch(evaluator, max_iterations=5)
        with pytest.raises(ValidationError):
            search.run(np.zeros(3, dtype=np.int64))


class TestTabuMemoryRegression:
    def test_vacated_server_not_immediately_reentered(self):
        """Regression: the tabu check must test the *candidate* move
        (vm, srv).  An earlier version tested (vm, current[vm]) against
        srv == current[vm] — always false — so the short-term memory
        never fired and a single VM on two equal servers oscillated,
        accepting a move-back every iteration."""
        from repro.model import AttributeSchema, Infrastructure
        from repro.telemetry import TabuIteration, capture_events

        infra = Infrastructure(
            capacity=np.array([[10.0], [10.0]]),
            capacity_factor=np.ones((2, 1)),
            operating_cost=np.array([1.0, 1.0]),
            usage_cost=np.array([0.5, 0.5]),
            max_load=np.full((2, 1), 0.8),
            max_qos=np.full((2, 1), 0.9),
            server_datacenter=np.array([0, 0]),
            schema=AttributeSchema(names=("cpu",)),
        )
        request = Request(
            demand=np.array([[2.0]]),
            qos_guarantee=np.array([0.8]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
            schema=infra.schema,
        )
        evaluator = PopulationEvaluator(infra, request)
        search = TabuSearch(
            evaluator,
            max_iterations=4,
            neighborhood_size=16,
            tenure=8,
            seed=0,
        )
        with capture_events() as sink:
            search.run(np.array([0]))
        accepted = [e.accepted for e in sink.of(TabuIteration)]
        # The only admissible move is 0 -> 1.  Once taken, the reverse
        # move (vm 0, server 0) is tabu and no better than the best, so
        # the freshly vacated server must not be re-entered.
        assert accepted[0] is True
        assert not any(accepted[1:])


class TestDeadlineRegression:
    """Regression: an EA ``time_limit`` must also bound the tabu-repair
    inner loop.  Before the fix, the NSGA loop checked its budget only
    between generations, so one pathological repair batch (huge
    ``max_rounds`` on a tight instance) could blow arbitrarily far past
    the configured limit."""

    @staticmethod
    def _tight_instance():
        """One tiny server pool under heavy pressure: most random
        genomes are infeasible, so repair always has work to do."""
        from repro.model import AttributeSchema, Infrastructure

        infra = Infrastructure(
            capacity=np.full((4, 1), 10.0),
            capacity_factor=np.ones((4, 1)),
            operating_cost=np.ones(4),
            usage_cost=np.full(4, 0.5),
            max_load=np.full((4, 1), 0.8),
            max_qos=np.full((4, 1), 0.9),
            server_datacenter=np.zeros(4, dtype=np.int64),
            schema=AttributeSchema(names=("cpu",)),
        )
        request = Request(
            demand=np.full((12, 1), 3.0),
            qos_guarantee=np.full(12, 0.8),
            downtime_cost=np.ones(12),
            migration_cost=np.ones(12),
            schema=infra.schema,
        )
        return infra, request

    def test_passed_deadline_is_pass_through(self):
        """With the budget already spent, repair must return its input
        untouched instead of starting a round it cannot afford."""
        import time

        infra, request = self._tight_instance()
        repair = TabuRepair(infra, request, max_rounds=10_000, seed=0)
        repair.set_deadline(time.perf_counter())  # already passed
        broken = np.zeros(12, dtype=np.int64)  # everything on server 0
        assert np.array_equal(repair.repair_genome(broken), broken)
        assert repair.moves_performed == 0

    def test_passed_deadline_skips_population_rows(self):
        import time

        infra, request = self._tight_instance()
        repair = TabuRepair(infra, request, max_rounds=10_000, seed=0)
        rng = np.random.default_rng(0)
        population = rng.integers(0, 4, size=(8, 12))
        repair.set_deadline(time.perf_counter())
        assert np.array_equal(repair(population), population)
        # The batch counter still advances: a later resume replays the
        # same RNG addressing whether or not the deadline fired.
        assert repair.runtime_state()["batch_counter"] == 1

    def test_clearing_deadline_reenables_repair(self):
        import time

        infra, request = self._tight_instance()
        repair = TabuRepair(infra, request, max_rounds=8, seed=0)
        broken = np.zeros(12, dtype=np.int64)
        repair.set_deadline(time.perf_counter())
        assert np.array_equal(repair.repair_genome(broken), broken)
        repair.set_deadline(None)
        assert not np.array_equal(repair.repair_genome(broken), broken)

    def test_ea_time_limit_bounds_repair_wall_clock(self):
        """End to end: a tiny ``time_limit`` with an absurdly expensive
        repairer must terminate promptly, not after ``max_rounds``."""
        import time

        from repro.ea import NSGA3, NSGAConfig
        from repro.ea.constraint_handling import RepairHandling

        infra, request = self._tight_instance()
        evaluator = PopulationEvaluator(infra, request)
        repair = TabuRepair(
            infra, request, max_rounds=100_000, tenure=2, seed=0
        )
        config = NSGAConfig(
            population_size=12,
            max_evaluations=6_000,
            reference_point_divisions=4,
            time_limit=0.15,
            seed=0,
        )
        algorithm = NSGA3(config, handler=RepairHandling(repair))
        start = time.perf_counter()
        result = algorithm.run(evaluator)
        elapsed = time.perf_counter() - start
        # Generous ceiling: the limit is 0.15 s; without deadline
        # propagation the repair loop alone runs for minutes.
        assert elapsed < 5.0
        assert result.evaluations < config.max_evaluations
