"""Unit tests for the NSGA-II/III engines and constraint handlers."""

import numpy as np
import pytest

from repro.ea import (
    NSGA2,
    NSGA3,
    ExclusionHandling,
    NoHandling,
    NSGAConfig,
    PenaltyHandling,
    RepairHandling,
    hypervolume,
)
from repro.errors import ValidationError
from repro.objectives import PopulationEvaluator
from repro.tabu import TabuRepair


@pytest.fixture
def evaluator(small_infra, small_request):
    return PopulationEvaluator(small_infra, small_request)


_FAST = NSGAConfig(population_size=20, max_evaluations=400, seed=7)


class TestEngines:
    @pytest.mark.parametrize("cls", [NSGA2, NSGA3])
    def test_respects_evaluation_budget(self, cls, evaluator):
        result = cls(_FAST).run(evaluator)
        assert result.evaluations <= _FAST.max_evaluations
        assert result.evaluations >= _FAST.population_size

    @pytest.mark.parametrize("cls", [NSGA2, NSGA3])
    def test_population_size_maintained(self, cls, evaluator):
        result = cls(_FAST).run(evaluator)
        assert len(result.population) == _FAST.population_size

    @pytest.mark.parametrize("cls", [NSGA2, NSGA3])
    def test_deterministic_given_seed(self, cls, small_infra, small_request):
        runs = []
        for _ in range(2):
            ev = PopulationEvaluator(small_infra, small_request)
            runs.append(cls(_FAST).run(ev))
        assert np.array_equal(runs[0].population.genomes, runs[1].population.genomes)

    @pytest.mark.parametrize("cls", [NSGA2, NSGA3])
    def test_history_tracking(self, cls, evaluator):
        result = cls(_FAST, track_history=True).run(evaluator)
        assert len(result.history) >= 2
        assert result.history[0].generation == 0
        assert result.history[-1].evaluations == result.evaluations

    def test_best_aggregate_never_worsens_with_repair(
        self, small_infra, small_request
    ):
        repair = TabuRepair(small_infra, small_request, seed=0)
        ev = PopulationEvaluator(small_infra, small_request)
        result = NSGA3(
            _FAST, handler=RepairHandling(repair), track_history=True
        ).run(ev)
        feasible_fracs = [s.feasible_fraction for s in result.history]
        assert feasible_fracs[-1] >= feasible_fracs[0]

    def test_time_limit_stops_early(self, evaluator):
        config = NSGAConfig(
            population_size=20, max_evaluations=1_000_000, time_limit=0.2, seed=0
        )
        result = NSGA2(config).run(evaluator)
        assert result.evaluations < 1_000_000

    def test_pareto_front_is_nondominated(self, evaluator):
        result = NSGA2(_FAST).run(evaluator)
        front = result.pareto_front()
        from repro.utils.pareto import dominance_matrix

        dom = dominance_matrix(front.objectives)
        assert not dom.any()

    def test_best_genome_shape(self, evaluator, small_request):
        result = NSGA3(_FAST).run(evaluator)
        genome = result.best_genome()
        assert genome.shape == (small_request.n,)


class TestHandlers:
    def test_no_handling_passthrough(self):
        handler = NoHandling()
        genomes = np.arange(6).reshape(2, 3)
        assert handler.prepare(genomes) is genomes
        objs = np.ones((2, 3))
        assert handler.effective_objectives(objs, np.array([0, 5])) is objs

    def test_penalty_adds_violations(self):
        handler = PenaltyHandling(coefficient=100.0)
        objs = np.ones((2, 3))
        out = handler.effective_objectives(objs, np.array([0, 2]))
        assert np.allclose(out[0], 1.0)
        assert np.allclose(out[1], 201.0)

    def test_penalty_negative_coefficient_rejected(self):
        with pytest.raises(ValidationError):
            PenaltyHandling(coefficient=-1.0)

    def test_exclusion_uses_tiers(self):
        assert ExclusionHandling().uses_feasibility_tiers

    def test_repair_calls_function_and_counts(self):
        calls = []

        def fake_repair(genomes):
            calls.append(genomes.shape)
            return genomes

        handler = RepairHandling(fake_repair)
        genomes = np.zeros((4, 3), dtype=np.int64)
        handler.prepare(genomes)
        handler.prepare(genomes)
        assert handler.repair_calls == 2 and len(calls) == 2

    def test_repair_shape_change_rejected(self):
        handler = RepairHandling(lambda g: g[:1])
        with pytest.raises(ValidationError):
            handler.prepare(np.zeros((4, 3), dtype=np.int64))

    def test_repaired_run_ends_feasible(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=1)
        ev = PopulationEvaluator(small_infra, small_request)
        result = NSGA3(_FAST, handler=RepairHandling(repair)).run(ev)
        # The small instance is easy; the final best must be feasible.
        assert result.best_violations() == 0

    def test_unmodified_run_may_violate_tight_instance(
        self, small_infra, small_request
    ):
        # Not asserting violations > 0 (stochastic), but the handler
        # must not have filtered anything: population may contain
        # infeasible individuals.
        ev = PopulationEvaluator(small_infra, small_request)
        result = NSGA2(_FAST, handler=NoHandling()).run(ev)
        assert len(result.population) == _FAST.population_size


class TestHypervolume:
    def test_2d_rectangle(self):
        hv = hypervolume(np.array([[1.0, 1.0]]), np.array([2.0, 2.0]))
        assert hv == pytest.approx(1.0)

    def test_2d_staircase(self):
        points = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        hv = hypervolume(points, np.array([4.0, 4.0]))
        # Union of rectangles: 3*1 + 2*1 + 1*1 ... computed by inclusion:
        # sweep: (4-1)*(4-3)=3, (4-2)*(3-2)=2, (4-3)*(2-1)=1 -> 6.
        assert hv == pytest.approx(6.0)

    def test_3d_box(self):
        hv = hypervolume(np.array([[0.0, 0.0, 0.0]]), np.array([2.0, 3.0, 4.0]))
        assert hv == pytest.approx(24.0)

    def test_3d_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        points = rng.random((6, 3))
        ref = np.array([1.0, 1.0, 1.0])
        hv = hypervolume(points, ref)
        samples = rng.random((200_000, 3))
        dominated = np.zeros(len(samples), dtype=bool)
        for p in points:
            dominated |= np.all(samples >= p, axis=1)
        assert hv == pytest.approx(dominated.mean(), abs=0.01)

    def test_points_outside_reference_ignored(self):
        hv = hypervolume(
            np.array([[1.0, 1.0], [5.0, 5.0]]), np.array([2.0, 2.0])
        )
        assert hv == pytest.approx(1.0)

    def test_empty_front(self):
        assert hypervolume(np.empty((0, 2)), np.array([1.0, 1.0])) == 0.0

    def test_adding_point_never_decreases(self):
        rng = np.random.default_rng(1)
        points = rng.random((5, 2))
        ref = np.array([1.5, 1.5])
        base = hypervolume(points, ref)
        extended = hypervolume(np.vstack([points, rng.random((1, 2))]), ref)
        assert extended >= base - 1e-12

    def test_unsupported_dims_rejected(self):
        with pytest.raises(ValidationError):
            hypervolume(np.ones((2, 4)), np.full(4, 2.0))


class TestStallTermination:
    def test_stall_stops_early(self, small_infra, small_request):
        from repro.objectives import PopulationEvaluator

        config = NSGAConfig(
            population_size=16,
            max_evaluations=100_000,
            stall_generations=3,
            seed=0,
        )
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = NSGA2(config, track_history=True).run(evaluator)
        # The easy instance converges immediately; the stall detector
        # must end the run long before the huge budget.
        assert result.evaluations < 100_000

    def test_stall_none_runs_full_budget(self, small_infra, small_request):
        from repro.objectives import PopulationEvaluator

        config = NSGAConfig(
            population_size=16, max_evaluations=480, stall_generations=None, seed=0
        )
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = NSGA2(config).run(evaluator)
        assert result.evaluations == 480

    def test_stall_validation(self):
        with pytest.raises(ValidationError):
            NSGAConfig(stall_generations=0)
