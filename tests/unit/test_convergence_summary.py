"""Unit tests for convergence analysis, warm starts and the scheduler
summary."""

import math

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator
from repro.ea import NSGA3, NSGAConfig, RepairHandling, greedy_seed
from repro.ea.result import EvolutionResult, GenerationStats
from repro.ea.population import Population
from repro.errors import ValidationError
from repro.evaluation import (
    convergence_summary,
    evaluations_to_feasible,
    evaluations_to_within,
    sparkline,
)
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.scheduler import TimeWindowScheduler, summarize_reports
from repro.tabu import TabuRepair


def _result(history):
    pop = Population(
        genomes=np.zeros((2, 2), dtype=np.int64),
        objectives=np.ones((2, 3)),
        violations=np.zeros(2, dtype=np.int64),
    )
    return EvolutionResult(
        population=pop,
        evaluations=history[-1].evaluations,
        elapsed=1.0,
        history=history,
        algorithm="test",
    )


def _stats(gen, evals, best, feasible):
    return GenerationStats(
        generation=gen,
        evaluations=evals,
        best_aggregate=best,
        mean_aggregate=best * 2,
        feasible_fraction=feasible,
        min_violations=0 if feasible > 0 else 3,
    )


class TestConvergenceHelpers:
    def test_evals_to_feasible(self):
        history = [
            _stats(0, 100, 50.0, 0.0),
            _stats(1, 200, 40.0, 0.0),
            _stats(2, 300, 30.0, 0.25),
        ]
        assert evaluations_to_feasible(_result(history)) == 300

    def test_never_feasible_is_none(self):
        history = [_stats(0, 100, 50.0, 0.0)]
        assert evaluations_to_feasible(_result(history)) is None

    def test_evals_to_within(self):
        history = [
            _stats(0, 100, 100.0, 1.0),
            _stats(1, 200, 52.0, 1.0),
            _stats(2, 300, 50.0, 1.0),
        ]
        # within 5% of 50 => <= 52.5, reached at generation 1.
        assert evaluations_to_within(_result(history), 1.05) == 200
        assert evaluations_to_within(_result(history), 1.0) == 300

    def test_factor_validated(self):
        history = [_stats(0, 100, 1.0, 1.0)]
        with pytest.raises(ValueError):
            evaluations_to_within(_result(history), 0.5)

    def test_no_history_rejected(self):
        pop = Population(
            genomes=np.zeros((1, 2), dtype=np.int64),
            objectives=np.ones((1, 3)),
            violations=np.zeros(1, dtype=np.int64),
        )
        bare = EvolutionResult(
            population=pop, evaluations=10, elapsed=0.1, history=[]
        )
        with pytest.raises(ValueError):
            evaluations_to_feasible(bare)

    def test_summary_keys(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=0)
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = NSGA3(
            NSGAConfig(population_size=16, max_evaluations=320, seed=0),
            handler=RepairHandling(repair),
            track_history=True,
        ).run(evaluator)
        summary = convergence_summary(result)
        assert summary["evals_to_feasible"] is not None
        assert summary["evaluations"] <= 320
        assert 0 <= summary["final_feasible_fraction"] <= 1

    def test_sparkline_shapes(self):
        line = sparkline([1.0, 2.0, 3.0, 2.0, 1.0])
        assert len(line) == 5
        assert line[2] == "█" and line[0] == "▁"

    def test_sparkline_resamples_and_handles_nan(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert " " in sparkline([1.0, math.nan, 2.0])

    def test_sparkline_constant_series(self):
        assert set(sparkline([5.0, 5.0, 5.0])) == {"▁"}


class TestWarmStart:
    def test_seeded_run_contains_seed_lineage(self, small_infra, small_request):
        seed_genome = greedy_seed(small_infra, small_request, seed=0)
        config = NSGAConfig(population_size=16, max_evaluations=320, seed=1)
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = NSGA3(config, track_history=True).run(
            evaluator, initial_genomes=seed_genome
        )
        # The greedy seed is capacity-feasible on this easy instance,
        # so the very first generation already has feasible members.
        assert result.history[0].feasible_fraction > 0

    def test_wrong_seed_length_rejected(self, small_infra, small_request):
        config = NSGAConfig(population_size=16, max_evaluations=320, seed=1)
        evaluator = PopulationEvaluator(small_infra, small_request)
        with pytest.raises(ValueError):
            NSGA3(config).run(
                evaluator, initial_genomes=np.zeros(3, dtype=np.int64)
            )

    def test_extra_seed_rows_ignored(self, small_infra, small_request):
        config = NSGAConfig(population_size=16, max_evaluations=320, seed=1)
        seeds = np.zeros((40, small_request.n), dtype=np.int64)
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = NSGA3(config).run(evaluator, initial_genomes=seeds)
        assert len(result.population) == 16


class TestSchedulerSummary:
    def test_rollup(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        request = Request(
            demand=np.ones((2, 3)),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
        )
        for i in range(4):
            scheduler.submit(f"r{i}", request, at=float(i))
        scheduler.schedule_departure("r0", at=2.5)
        reports = scheduler.run()
        summary = summarize_reports(reports)
        assert summary.arrivals == 4
        assert summary.accepted == 4
        assert summary.departures == 1
        assert summary.rejection_rate == 0.0
        assert summary.windows == len(reports)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize_reports([])
