"""Unit tests for genetic operators: SBX, PM, discrete pair, selection."""

import numpy as np
import pytest

from repro.ea.operators import (
    binary_tournament,
    polynomial_mutation,
    random_reset_mutation,
    sbx_crossover,
    uniform_crossover,
)
from repro.ea.operators.selection import random_mating_pool
from repro.errors import ValidationError


class TestSBX:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        parents = rng.integers(0, 20, size=(40, 15))
        children = sbx_crossover(parents, n_servers=20, seed=1)
        assert children.shape == parents.shape
        assert children.min() >= 0 and children.max() < 20

    def test_rate_zero_is_identity(self):
        parents = np.random.default_rng(1).integers(0, 9, size=(10, 6))
        children = sbx_crossover(parents, n_servers=9, rate=0.0, seed=2)
        assert np.array_equal(children, parents)

    def test_identical_parents_yield_identical_children(self):
        parents = np.tile(np.arange(8), (4, 1))
        children = sbx_crossover(parents, n_servers=8, rate=1.0, seed=3)
        assert np.array_equal(children, parents)

    def test_high_eta_keeps_children_near_parents(self):
        parents = np.array([[0] * 50, [10] * 50]).astype(np.int64)
        children = sbx_crossover(parents, n_servers=100, rate=1.0, eta=1000.0, seed=4)
        # With a huge distribution index children hug the parents.
        assert np.all(np.minimum(np.abs(children - 0), np.abs(children - 10)) <= 2)

    def test_odd_parent_count_rejected(self):
        with pytest.raises(ValidationError):
            sbx_crossover(np.zeros((3, 2), dtype=np.int64), n_servers=4)

    def test_deterministic_given_seed(self):
        parents = np.random.default_rng(5).integers(0, 30, size=(20, 8))
        a = sbx_crossover(parents, n_servers=30, seed=42)
        b = sbx_crossover(parents, n_servers=30, seed=42)
        assert np.array_equal(a, b)


class TestPolynomialMutation:
    def test_shape_and_range(self):
        genomes = np.random.default_rng(0).integers(0, 50, size=(30, 20))
        mutated = polynomial_mutation(genomes, n_servers=50, seed=1)
        assert mutated.shape == genomes.shape
        assert mutated.min() >= 0 and mutated.max() < 50

    def test_rate_zero_is_identity(self):
        genomes = np.random.default_rng(1).integers(0, 9, size=(5, 7))
        assert np.array_equal(
            polynomial_mutation(genomes, n_servers=9, rate=0.0, seed=2), genomes
        )

    def test_rate_controls_change_fraction(self):
        genomes = np.full((50, 100), 25, dtype=np.int64)
        low = polynomial_mutation(genomes, n_servers=50, rate=0.05, seed=3)
        high = polynomial_mutation(genomes, n_servers=50, rate=0.9, seed=3)
        assert (low != genomes).mean() < (high != genomes).mean()

    def test_single_server_noop(self):
        genomes = np.zeros((4, 5), dtype=np.int64)
        assert np.array_equal(
            polynomial_mutation(genomes, n_servers=1, rate=1.0), genomes
        )

    def test_input_not_modified(self):
        genomes = np.random.default_rng(2).integers(0, 9, size=(6, 6))
        snapshot = genomes.copy()
        polynomial_mutation(genomes, n_servers=9, rate=1.0, seed=4)
        assert np.array_equal(genomes, snapshot)


class TestDiscreteOperators:
    def test_uniform_crossover_genes_come_from_parents(self):
        rng = np.random.default_rng(0)
        parents = rng.integers(0, 100, size=(20, 12))
        children = uniform_crossover(parents, rate=1.0, seed=1)
        p1, p2 = parents[0::2], parents[1::2]
        c1, c2 = children[0::2], children[1::2]
        assert np.all((c1 == p1) | (c1 == p2))
        assert np.all((c2 == p1) | (c2 == p2))

    def test_uniform_crossover_preserves_multiset_per_gene(self):
        parents = np.random.default_rng(1).integers(0, 50, size=(10, 8))
        children = uniform_crossover(parents, rate=1.0, seed=2)
        for pair in range(5):
            p = np.sort(parents[2 * pair : 2 * pair + 2], axis=0)
            c = np.sort(children[2 * pair : 2 * pair + 2], axis=0)
            assert np.array_equal(p, c)

    def test_random_reset_range(self):
        genomes = np.zeros((10, 10), dtype=np.int64)
        mutated = random_reset_mutation(genomes, n_servers=5, rate=1.0, seed=3)
        assert mutated.min() >= 0 and mutated.max() < 5


class TestSelection:
    def test_tournament_prefers_lower_rank(self):
        ranks = np.array([0, 5])
        winners = binary_tournament(ranks, None, n_parents=200, seed=0)
        # Individual 0 must win every mixed tournament.
        share = (winners == 0).mean()
        assert share > 0.6

    def test_tournament_prefers_feasible_tier(self):
        ranks = np.array([5, 0])  # worse rank but feasible
        tiers = np.array([0, 3])
        winners = binary_tournament(ranks, None, n_parents=200, tiers=tiers, seed=1)
        assert (winners == 0).mean() > 0.6

    def test_tournament_crowding_tiebreak(self):
        ranks = np.array([0, 0])
        crowding = np.array([10.0, 0.1])
        winners = binary_tournament(ranks, crowding, n_parents=200, seed=2)
        assert (winners == 0).mean() > 0.6

    def test_empty_population_rejected(self):
        with pytest.raises(ValidationError):
            binary_tournament(np.empty(0, dtype=np.int64), None, 4)

    def test_random_pool_range(self):
        pool = random_mating_pool(10, 50, seed=3)
        assert pool.shape == (50,)
        assert pool.min() >= 0 and pool.max() < 10
