"""Unit tests for the allocator interface, greedy baselines and the
CP/NSGA allocators."""

import numpy as np
import pytest

from repro.allocator import per_request_rejections
from repro.baselines import (
    BestFitAllocator,
    FirstFitAllocator,
    RandomAllocator,
    RoundRobinAllocator,
    WorstFitAllocator,
)
from repro.constraints import ConstraintSet
from repro.cp import CPAllocator, SearchLimits
from repro.ea import NSGAConfig
from repro.hybrid import (
    NSGA2Allocator,
    NSGA3Allocator,
    NSGA3CPAllocator,
    NSGA3TabuAllocator,
)
from repro.model import Request
from repro.model.placement import UNPLACED

_FAST = NSGAConfig(population_size=20, max_evaluations=400, seed=3)

GREEDY = [
    RoundRobinAllocator,
    FirstFitAllocator,
    BestFitAllocator,
    WorstFitAllocator,
    RandomAllocator,
]


class TestRejectionSemantics:
    def test_unplaced_rejects_owner(self, small_infra, small_request):
        merged, owner = Request.concatenate([small_request, small_request])
        constraint_set = ConstraintSet(small_infra, merged)
        assignment = np.array([0, 0, 2, 3, 4, 5] + [UNPLACED] * 6)
        rejected = per_request_rejections(assignment, merged, owner, constraint_set)
        assert rejected.tolist() == [False, True]

    def test_violated_group_rejects_owner(self, small_infra, small_request):
        merged, owner = Request.concatenate([small_request])
        constraint_set = ConstraintSet(small_infra, merged)
        assignment = np.array([0, 1, 2, 3, 4, 5])  # same-server pair split
        rejected = per_request_rejections(assignment, merged, owner, constraint_set)
        assert rejected.tolist() == [True]

    def test_overloaded_server_rejects_all_its_owners(self, small_infra):
        big = small_infra.effective_capacity[0] * 0.8
        request = Request(
            demand=np.vstack([big, big]),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
        )
        merged, owner = Request.concatenate([request])
        constraint_set = ConstraintSet(small_infra, merged)
        assignment = np.array([0, 0])
        rejected = per_request_rejections(assignment, merged, owner, constraint_set)
        assert rejected.tolist() == [True]


class TestGreedyAllocators:
    @pytest.mark.parametrize("cls", GREEDY)
    def test_never_violates(self, cls, small_infra, small_request):
        outcome = cls().allocate(small_infra, [small_request, small_request])
        assert outcome.violations == 0

    @pytest.mark.parametrize("cls", GREEDY)
    def test_accepted_requests_fully_placed(self, cls, small_infra, small_request):
        outcome = cls().allocate(small_infra, [small_request])
        if outcome.accepted[0]:
            assert np.all(outcome.assignment >= 0)

    @pytest.mark.parametrize("cls", GREEDY)
    def test_respects_affinity_groups(self, cls, small_infra, small_request):
        outcome = cls().allocate(small_infra, [small_request])
        if outcome.accepted[0]:
            genome = outcome.assignment
            assert genome[0] == genome[1]  # SAME_SERVER (0, 1)
            assert genome[2] != genome[3]  # DIFFERENT_SERVERS (2, 3)

    def test_round_robin_spreads(self, small_infra):
        request = Request(
            demand=np.ones((4, 3)),
            qos_guarantee=np.full(4, 0.9),
            downtime_cost=np.ones(4),
            migration_cost=np.ones(4),
        )
        outcome = RoundRobinAllocator().allocate(small_infra, [request])
        # Rotation places each VM on a new server.
        assert len(set(outcome.assignment.tolist())) == 4

    def test_first_fit_packs_low_ids(self, small_infra):
        request = Request(
            demand=np.ones((4, 3)),
            qos_guarantee=np.full(4, 0.9),
            downtime_cost=np.ones(4),
            migration_cost=np.ones(4),
        )
        outcome = FirstFitAllocator().allocate(small_infra, [request])
        assert set(outcome.assignment.tolist()) == {0}

    def test_rejects_oversized_request(self, small_infra):
        request = Request(
            demand=np.array([[1e6, 1.0, 1.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        outcome = FirstFitAllocator().allocate(small_infra, [request])
        assert outcome.rejection_rate == 1.0
        assert outcome.assignment[0] == UNPLACED
        assert outcome.violations == 0

    def test_rejection_rolls_back_usage(self, small_infra, small_request):
        # A rejected request must not consume capacity: the same
        # follow-up request must still be accepted.
        impossible = Request(
            demand=np.vstack([np.ones(3), [1e6, 1.0, 1.0]]),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
        )
        outcome = FirstFitAllocator().allocate(
            small_infra, [impossible, small_request]
        )
        assert outcome.accepted.tolist() == [False, True]

    def test_base_usage_respected(self, small_infra, small_request):
        base = small_infra.effective_capacity.copy()
        base[1:] = 0.0  # server 0 is full
        outcome = FirstFitAllocator().allocate(
            small_infra, [small_request], base_usage=base
        )
        placed = outcome.assignment[outcome.assignment >= 0]
        assert 0 not in placed.tolist()


class TestCPAllocator:
    def test_zero_violations(self, small_infra, small_request):
        outcome = CPAllocator(optimize=False).allocate(
            small_infra, [small_request, small_request]
        )
        assert outcome.violations == 0

    def test_optimize_beats_or_matches_feasible_cost(
        self, small_infra, small_request
    ):
        optimal = CPAllocator(optimize=True).allocate(small_infra, [small_request])
        feasible = CPAllocator(optimize=False).allocate(
            small_infra, [small_request]
        )
        assert optimal.provider_cost <= feasible.provider_cost + 1e-9

    def test_rejects_infeasible_request_only(self, small_infra, small_request):
        impossible = Request(
            demand=np.array([[1e6, 1.0, 1.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        outcome = CPAllocator(optimize=False).allocate(
            small_infra, [impossible, small_request]
        )
        assert outcome.accepted.tolist() == [False, True]
        assert outcome.extra["proved_rejections"] == 1


class TestNSGAAllocators:
    @pytest.mark.parametrize(
        "cls", [NSGA2Allocator, NSGA3Allocator, NSGA3TabuAllocator]
    )
    def test_produces_full_assignment(self, cls, small_infra, small_request):
        outcome = cls(_FAST).allocate(small_infra, [small_request])
        assert outcome.assignment.shape == (small_request.n,)
        assert np.all(outcome.assignment >= 0)
        assert outcome.evaluations > 0

    def test_tabu_allocator_feasible_on_easy_instance(
        self, small_infra, small_request
    ):
        outcome = NSGA3TabuAllocator(_FAST).allocate(small_infra, [small_request])
        assert outcome.violations == 0
        assert outcome.rejection_rate == 0.0
        assert "repair_calls" in outcome.extra

    def test_cp_hybrid_feasible_on_easy_instance(self, small_infra, small_request):
        outcome = NSGA3CPAllocator(
            _FAST, repair_limits=SearchLimits(max_nodes=500, time_limit=0.2)
        ).allocate(small_infra, [small_request])
        assert outcome.violations == 0

    def test_outcome_metric_properties(self, small_infra, small_request):
        outcome = NSGA2Allocator(_FAST).allocate(small_infra, [small_request])
        assert 0.0 <= outcome.rejection_rate <= 1.0
        assert outcome.provider_cost == outcome.objectives[0]
        assert outcome.n_requests == 1


class TestTabuPostProcess:
    def test_feasible_choice_unchanged(self, small_infra, small_request):
        """The final repair pass must not touch an already-feasible
        selected solution."""
        allocator = NSGA3TabuAllocator(_FAST)
        feasible = np.array([0, 0, 2, 3, 4, 5])
        out = allocator._post_process(
            feasible.copy(), small_infra, small_request, None
        )
        assert np.array_equal(out, feasible)

    def test_infeasible_choice_gets_repaired(self, small_infra, small_request):
        allocator = NSGA3TabuAllocator(_FAST)
        broken = np.array([0, 1, 2, 3, 4, 5])  # same-server pair split
        out = allocator._post_process(
            broken.copy(), small_infra, small_request, None
        )
        from repro.constraints import ConstraintSet

        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(out) == 0
