"""Unit tests for the process-parallel experiment runner."""

from functools import partial

import pytest

from repro.baselines import BestFitAllocator, FirstFitAllocator
from repro.ea import NSGAConfig
from repro.errors import ValidationError
from repro.evaluation import ExperimentRunner
from repro.evaluation.parallel import ParallelExperimentRunner
from repro.hybrid import NSGA2Allocator
from repro.workloads import ScenarioSpec

_SPECS = [
    ScenarioSpec(servers=10, vms=20, tightness=0.5),
    ScenarioSpec(servers=16, vms=32, tightness=0.5),
]

# Picklable factories: plain classes and partials of (class, config).
_FACTORIES = {
    "ff": FirstFitAllocator,
    "bf": BestFitAllocator,
    "nsga2": partial(
        NSGA2Allocator, NSGAConfig(population_size=8, max_evaluations=64, seed=0)
    ),
}


class TestParallelRunner:
    def test_matches_serial_runner_exactly(self):
        """Determinism is the whole contract: same seed, same records,
        regardless of worker scheduling (timing fields excluded)."""
        serial = ExperimentRunner(dict(_FACTORIES), runs=2, seed=3).run_sweep(
            _SPECS
        )
        parallel = ParallelExperimentRunner(
            dict(_FACTORIES), runs=2, seed=3, n_workers=2
        ).run_sweep(_SPECS)
        assert len(serial.records) == len(parallel.records)
        for a, b in zip(serial.records, parallel.records):
            assert a.algorithm == b.algorithm
            assert (a.servers, a.vms, a.seed) == (b.servers, b.vms, b.seed)
            assert a.rejection_rate == b.rejection_rate
            assert a.violations == b.violations
            assert a.provider_cost == pytest.approx(b.provider_cost)

    def test_single_worker_works(self):
        result = ParallelExperimentRunner(
            {"ff": FirstFitAllocator}, runs=1, seed=0, n_workers=1
        ).run_sweep(_SPECS[:1])
        assert len(result.records) == 1

    def test_series_interface_compatible(self):
        result = ParallelExperimentRunner(
            {"ff": FirstFitAllocator, "bf": BestFitAllocator},
            runs=2,
            seed=1,
            n_workers=2,
        ).run_sweep(_SPECS)
        series = result.series("rejection_rate")
        assert set(series) == {"ff", "bf"}
        assert all(len(v) == len(_SPECS) for v in series.values())

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParallelExperimentRunner({}, runs=1)
        with pytest.raises(ValidationError):
            ParallelExperimentRunner({"ff": FirstFitAllocator}, runs=0)
        with pytest.raises(ValidationError):
            ParallelExperimentRunner({"ff": FirstFitAllocator}, n_workers=0)

    def test_unpicklable_factory_rejected_up_front(self):
        """Lambdas/closures cannot cross the process boundary; the
        constructor fails fast and names the offending label instead of
        exploding mid-sweep inside the pool."""
        with pytest.raises(ValidationError, match="'sneaky_lambda'"):
            ParallelExperimentRunner(
                {"ff": FirstFitAllocator, "sneaky_lambda": lambda: FirstFitAllocator()},
                runs=1,
            )

        def closure_factory():
            return FirstFitAllocator()

        with pytest.raises(ValidationError, match="'local_closure'"):
            ParallelExperimentRunner({"local_closure": closure_factory}, runs=1)

    def test_merged_telemetry_equals_sum_of_worker_snapshots(self):
        """Acceptance criterion: the parallel sweep's merged registry
        snapshot is exactly the sum of the per-worker snapshots — one
        evaluation.cells count per (algorithm, spec, run) cell."""
        runs = 2
        result = ParallelExperimentRunner(
            dict(_FACTORIES), runs=runs, seed=3, n_workers=2
        ).run_sweep(_SPECS)
        merged = result.telemetry
        assert merged is not None
        cells_per_label = len(_SPECS) * runs
        for label in _FACTORIES:
            key = f"evaluation.cells{{algorithm={label}}}"
            assert merged.counters[key] == cells_per_label
        assert merged.counter_total("evaluation.cells") == len(result.records)
        summary = merged.histograms["evaluation.cell_seconds{algorithm=ff}"]
        assert summary.count == cells_per_label
        assert summary.total >= summary.maximum >= summary.minimum >= 0.0

    def test_serial_and_parallel_counters_agree(self):
        serial = ExperimentRunner(dict(_FACTORIES), runs=1, seed=5).run_sweep(
            _SPECS
        )
        parallel = ParallelExperimentRunner(
            dict(_FACTORIES), runs=1, seed=5, n_workers=2
        ).run_sweep(_SPECS)
        assert serial.telemetry is not None and parallel.telemetry is not None

        # The per-worker ProblemCache intentionally turns repeat
        # compilations into hits in the parallel path, so engine.cache.*
        # series differ by design; everything else must match exactly.
        def without_cache(counters):
            return {
                key: value
                for key, value in counters.items()
                if not key.startswith("engine.cache.")
            }

        assert without_cache(serial.telemetry.counters) == without_cache(
            parallel.telemetry.counters
        )
        # Total lookups are conserved: serial misses = parallel hits+misses.
        assert serial.telemetry.counter_total(
            "engine.cache.misses"
        ) == parallel.telemetry.counter_total(
            "engine.cache.misses"
        ) + parallel.telemetry.counter_total("engine.cache.hits")

    def test_worker_problem_cache_reuses_compilations(self):
        """The pool initializer installs a per-worker ProblemCache:
        two compiling factories solving the same scenario inside one
        worker share the compilation, visible as ``engine.cache.hits``
        in the sweep's merged telemetry."""
        cfg = NSGAConfig(population_size=8, max_evaluations=32, seed=0)
        factories = {
            "nsga2_a": partial(NSGA2Allocator, cfg),
            "nsga2_b": partial(NSGA2Allocator, cfg),
        }
        result = ParallelExperimentRunner(
            factories, runs=1, seed=2, n_workers=1
        ).run_sweep(_SPECS[:1])
        merged = result.telemetry
        assert merged is not None
        assert merged.counter_total("engine.cache.misses") == 1
        assert merged.counter_total("engine.cache.hits") >= 1

    def test_problem_cache_size_validated(self):
        with pytest.raises(ValidationError):
            ParallelExperimentRunner(
                {"ff": FirstFitAllocator}, runs=1, problem_cache_size=0
            )
