"""Unit tests for PlatformState (committed usage across windows)."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.model import Placement, PlatformState


def _placement(infra, genes):
    return Placement(assignment=np.asarray(genes), infrastructure=infra)


class TestCommitRelease:
    def test_commit_adds_usage(self, small_infra, small_request):
        state = PlatformState(small_infra)
        placement = _placement(small_infra, [0, 0, 1, 2, 3, 4])
        state.commit("a", placement, small_request)
        expect = placement.server_usage(small_request.demand)
        assert np.allclose(state.committed_usage, expect)
        assert state.hosted_resource_count == 6

    def test_release_restores_empty(self, small_infra, small_request):
        state = PlatformState(small_infra)
        state.commit("a", _placement(small_infra, [0, 0, 1, 2, 3, 4]), small_request)
        state.release("a")
        assert np.allclose(state.committed_usage, 0.0)
        assert state.tenants() == ()

    def test_duplicate_key_rejected(self, small_infra, small_request):
        state = PlatformState(small_infra)
        placement = _placement(small_infra, [0, 0, 1, 2, 3, 4])
        state.commit("a", placement, small_request)
        with pytest.raises(SchedulerError):
            state.commit("a", placement, small_request)

    def test_release_unknown_rejected(self, small_infra):
        with pytest.raises(SchedulerError):
            PlatformState(small_infra).release("ghost")

    def test_size_mismatch_rejected(self, small_infra, small_request):
        state = PlatformState(small_infra)
        with pytest.raises(SchedulerError):
            state.commit("a", _placement(small_infra, [0, 1]), small_request)

    def test_residual_capacity(self, small_infra, small_request):
        state = PlatformState(small_infra)
        before = state.residual_capacity.copy()
        assert np.allclose(before, small_infra.effective_capacity)
        state.commit("a", _placement(small_infra, [0] * 6), small_request)
        after = state.residual_capacity
        assert np.all(after[0] < before[0])
        assert np.allclose(after[1:], before[1:])


class TestReassign:
    def test_reassign_returns_old(self, small_infra, small_request):
        state = PlatformState(small_infra)
        state.commit("a", _placement(small_infra, [0, 0, 1, 2, 3, 4]), small_request)
        old = state.reassign(
            "a", _placement(small_infra, [5, 5, 6, 7, 3, 4]), small_request
        )
        assert old.tolist() == [0, 0, 1, 2, 3, 4]
        assert state.previous_assignment("a").tolist() == [5, 5, 6, 7, 3, 4]

    def test_reassign_unknown_rejected(self, small_infra, small_request):
        state = PlatformState(small_infra)
        with pytest.raises(SchedulerError):
            state.reassign(
                "ghost", _placement(small_infra, [0] * 6), small_request
            )


class TestConsistency:
    def test_verify_after_churn(self, small_infra, small_request):
        state = PlatformState(small_infra)
        for i in range(5):
            state.commit(
                f"t{i}", _placement(small_infra, [(i + j) % 8 for j in range(6)]),
                small_request,
            )
        state.release("t2")
        state.release("t4")
        state.verify_consistency()  # must not raise

    def test_committed_load_matches_usage(self, small_infra, small_request):
        state = PlatformState(small_infra)
        state.commit("a", _placement(small_infra, [0] * 6), small_request)
        load = state.committed_load
        expect = state.committed_usage[0] / small_infra.capacity[0]
        assert np.allclose(load[0], expect)

    def test_previous_assignment_is_copy(self, small_infra, small_request):
        state = PlatformState(small_infra)
        state.commit("a", _placement(small_infra, [0, 0, 1, 2, 3, 4]), small_request)
        snap = state.previous_assignment("a")
        snap[0] = 7
        assert state.previous_assignment("a")[0] == 0
