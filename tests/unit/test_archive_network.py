"""Unit tests for the Pareto archive, hop matrix and communication-cost
extension objective."""

import numpy as np
import pytest

from repro.ea import ParetoArchive
from repro.errors import DimensionError, ValidationError
from repro.model.placement import UNPLACED
from repro.objectives import CommunicationCost, uniform_group_traffic
from repro.topology import (
    FabricSpec,
    SpineLeafFabric,
    hop_distance,
    hop_matrix,
)


class TestParetoArchive:
    def test_accepts_nondominated(self):
        archive = ParetoArchive()
        assert archive.add(np.array([0]), np.array([1.0, 2.0]))
        assert archive.add(np.array([1]), np.array([2.0, 1.0]))
        assert len(archive) == 2

    def test_refuses_dominated_and_duplicates(self):
        archive = ParetoArchive()
        archive.add(np.array([0]), np.array([1.0, 1.0]))
        assert not archive.add(np.array([1]), np.array([2.0, 2.0]))
        assert not archive.add(np.array([2]), np.array([1.0, 1.0]))
        assert len(archive) == 1

    def test_evicts_newly_dominated(self):
        archive = ParetoArchive()
        archive.add(np.array([0]), np.array([3.0, 3.0]))
        archive.add(np.array([1]), np.array([1.0, 1.0]))  # dominates the first
        assert len(archive) == 1
        assert archive.objectives.tolist() == [[1.0, 1.0]]

    def test_capacity_evicts_most_crowded(self):
        archive = ParetoArchive(capacity=3)
        # Four nondominated points; two are nearly identical -> one of
        # the crowded pair must go.
        archive.add(np.array([0]), np.array([0.0, 10.0]))
        archive.add(np.array([1]), np.array([10.0, 0.0]))
        archive.add(np.array([2]), np.array([5.0, 5.0]))
        archive.add(np.array([3]), np.array([5.1, 4.9]))
        assert len(archive) == 3
        objs = archive.objectives
        assert [0.0, 10.0] in objs.tolist()
        assert [10.0, 0.0] in objs.tolist()

    def test_add_population_counts(self):
        archive = ParetoArchive()
        genomes = np.arange(6).reshape(3, 2)
        objectives = np.array([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        entered = archive.add_population(genomes, objectives)
        assert entered == 2

    def test_best_by_ideal_point(self):
        archive = ParetoArchive()
        archive.add(np.array([0]), np.array([0.0, 10.0]))
        archive.add(np.array([1]), np.array([10.0, 0.0]))
        archive.add(np.array([2]), np.array([2.0, 2.0]))
        genome, objectives = archive.best_by_ideal_point()
        assert genome.tolist() == [2]

    def test_empty_best_is_none(self):
        assert ParetoArchive().best_by_ideal_point() is None

    def test_genome_copied_on_entry(self):
        archive = ParetoArchive()
        genome = np.array([7])
        archive.add(genome, np.array([1.0, 1.0]))
        genome[0] = 99
        assert archive.genomes[0, 0] == 7

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            ParetoArchive(capacity=0)


@pytest.fixture
def fabric():
    return SpineLeafFabric(
        FabricSpec(datacenters=2, spines=2, leaves=2, servers_per_leaf=2)
    )


class TestHopMatrix:
    def test_matches_networkx_shortest_paths(self, fabric):
        matrix = hop_matrix(fabric)
        servers = fabric.server_nodes
        for i in range(len(servers)):
            for j in range(len(servers)):
                assert matrix[i, j] == hop_distance(fabric, servers[i], servers[j])

    def test_symmetric_zero_diagonal(self, fabric):
        matrix = hop_matrix(fabric)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestCommunicationCost:
    def test_traffic_builder(self):
        traffic = uniform_group_traffic(4, [(0, 1, 2)], rate=2.0)
        assert traffic[0, 1] == 2.0 and traffic[1, 2] == 2.0
        assert traffic[0, 3] == 0.0
        assert np.allclose(np.diag(traffic), 0.0)

    def test_builder_validates(self):
        with pytest.raises(ValidationError):
            uniform_group_traffic(2, [(0, 5)])
        with pytest.raises(ValidationError):
            uniform_group_traffic(2, [(0, 1)], rate=-1.0)

    def test_same_server_is_free(self, fabric):
        traffic = uniform_group_traffic(2, [(0, 1)], rate=3.0)
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        assert cost.value(np.array([0, 0])) == 0.0

    def test_hop_weighting(self, fabric):
        traffic = uniform_group_traffic(2, [(0, 1)], rate=3.0)
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        # Same leaf: 2 hops x rate 3 = 6; cross-dc: 6 hops x 3 = 18.
        assert cost.value(np.array([0, 1])) == pytest.approx(6.0)
        assert cost.value(np.array([0, 4])) == pytest.approx(18.0)

    def test_unplaced_pair_free(self, fabric):
        traffic = uniform_group_traffic(2, [(0, 1)], rate=1.0)
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        assert cost.value(np.array([0, UNPLACED])) == 0.0

    def test_batch_matches_single(self, fabric):
        rng = np.random.default_rng(0)
        n = 6
        traffic = uniform_group_traffic(n, [(0, 1, 2), (3, 4)], rate=1.5)
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        population = rng.integers(0, fabric.n_servers, size=(20, n))
        population[3, 1] = UNPLACED
        batch = cost.batch(population)
        single = [cost.value(row) for row in population]
        assert np.allclose(batch, single)

    def test_affinity_rules_reduce_cost(self, fabric):
        """Placing a chatty pair under SAME_DATACENTER can never cost
        more than the worst cross-datacenter split."""
        traffic = uniform_group_traffic(2, [(0, 1)], rate=1.0)
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        same_dc = [
            cost.value(np.array([i, j]))
            for i in range(4)
            for j in range(4)  # dc0 servers are 0..3
        ]
        cross = cost.value(np.array([0, 4]))
        assert max(same_dc) < cross

    def test_asymmetric_traffic_rejected(self, fabric):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            CommunicationCost(bad, hop_matrix(fabric))

    def test_shape_checks(self, fabric):
        traffic = uniform_group_traffic(2, [(0, 1)])
        cost = CommunicationCost(traffic, hop_matrix(fabric))
        with pytest.raises(DimensionError):
            cost.value(np.array([0, 1, 2]))
        with pytest.raises(DimensionError):
            cost.batch(np.zeros((3, 5), dtype=np.int64))
