"""Coverage-widening tests for corners the focused suites skip:
migration-aware allocation outcomes, exclusion/penalty engines end to
end, CP value orders, round-robin state, enums, strict-QoS evaluator."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator, RoundRobinAllocator
from repro.cp import CPSearch, CPSolver, SearchLimits
from repro.ea import (
    ExclusionHandling,
    NSGA2,
    NSGA3,
    NSGAConfig,
    PenaltyHandling,
)
from repro.hybrid import NSGA3TabuAllocator
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.types import AlgorithmKind, ConstraintHandling, ObjectiveKind, PlacementRule

_FAST = NSGAConfig(population_size=16, max_evaluations=320, seed=9)


class TestMigrationAwareAllocation:
    def test_outcome_reports_migration_cost(self, small_infra, small_request):
        previous = np.array([0, 0, 2, 3, 4, 5])
        outcome = FirstFitAllocator().allocate(
            small_infra, [small_request], previous_assignment=previous
        )
        moved = outcome.assignment != previous
        expect = small_request.migration_cost[moved].sum()
        assert outcome.objectives[2] == pytest.approx(expect)

    def test_tabu_allocator_prefers_staying_put(self, small_infra, small_request):
        """With a feasible previous placement, the migration objective
        keeps the chosen solution close to it."""
        previous = np.array([0, 0, 2, 3, 4, 5])
        outcome = NSGA3TabuAllocator(_FAST).allocate(
            small_infra, [small_request], previous_assignment=previous
        )
        moves = int((outcome.assignment != previous).sum())
        assert moves < small_request.n  # strictly fewer than "move all"


class TestHandlersEndToEnd:
    @pytest.mark.parametrize("engine_cls", [NSGA2, NSGA3])
    def test_exclusion_runs(self, engine_cls, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = engine_cls(_FAST, handler=ExclusionHandling()).run(evaluator)
        assert len(result.population) == _FAST.population_size

    @pytest.mark.parametrize("engine_cls", [NSGA2, NSGA3])
    def test_penalty_runs_and_reduces_violations(
        self, engine_cls, small_infra, small_request
    ):
        evaluator = PopulationEvaluator(small_infra, small_request)
        plain = engine_cls(_FAST).run(
            PopulationEvaluator(small_infra, small_request)
        )
        penalized = engine_cls(
            _FAST, handler=PenaltyHandling(coefficient=1e4)
        ).run(evaluator)
        # The penalty must steer the *population* toward feasibility at
        # least as well as ignoring constraints entirely.
        assert (
            penalized.population.violations.mean()
            <= plain.population.violations.mean() + 1e-9
        )


class TestRoundRobinState:
    def test_pointer_persists_across_requests(self, small_infra):
        request = Request(
            demand=np.ones((1, 3)),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        allocator = RoundRobinAllocator()
        first = allocator.allocate(small_infra, [request])
        second = allocator.allocate(small_infra, [request])
        assert first.assignment[0] != second.assignment[0]

    def test_reset_rewinds(self, small_infra):
        request = Request(
            demand=np.ones((1, 3)),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        allocator = RoundRobinAllocator()
        first = allocator.allocate(small_infra, [request])
        allocator.reset()
        again = allocator.allocate(small_infra, [request])
        assert first.assignment[0] == again.assignment[0]


class TestCPValueOrders:
    @pytest.mark.parametrize("order", ["index", "cheapest", "spread"])
    def test_all_orders_find_feasible(self, order, small_infra, small_request):
        solver = CPSolver(small_infra, small_request, value_order=order)
        solution = solver.find_feasible()
        assert solution.found

    def test_cheapest_first_feasible_not_worse_than_index(
        self, small_infra, small_request
    ):
        cheap = CPSolver(
            small_infra, small_request, value_order="cheapest"
        ).find_feasible()
        index = CPSolver(
            small_infra, small_request, value_order="index"
        ).find_feasible()
        assert cheap.cost <= index.cost + 1e-9

    def test_spread_prefers_roomy_servers(self, small_infra):
        request = Request(
            demand=np.ones((1, 3)),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        search = CPSearch(small_infra, request, value_order="spread")
        assignment, _cost = search.solve()
        # Servers 2, 3, 6, 7 are the big boxes; spread goes there first.
        assert assignment[0] in (2, 3, 6, 7)


class TestStrictQosEvaluator:
    def test_strict_mode_counts_more_violations(self, small_infra, small_request):
        rng = np.random.default_rng(3)
        population = rng.integers(0, small_infra.m, size=(20, small_request.n))
        loose = PopulationEvaluator(small_infra, small_request)
        strict = PopulationEvaluator(small_infra, small_request, qos_strict=True)
        loose_violations = loose.evaluate_population(population).violations
        strict_violations = strict.evaluate_population(population).violations
        assert np.all(strict_violations >= loose_violations)

    def test_strict_batch_matches_single(self, small_infra, small_request):
        rng = np.random.default_rng(4)
        population = rng.integers(0, small_infra.m, size=(10, small_request.n))
        strict = PopulationEvaluator(small_infra, small_request, qos_strict=True)
        result = strict.evaluate_population(population)
        for i in range(10):
            assert strict.violations(population[i]) == result.violations[i]


class TestEnums:
    def test_placement_rule_values_roundtrip(self):
        for rule in PlacementRule:
            assert PlacementRule(rule.value) is rule

    def test_algorithm_kind_covers_paper_six(self):
        assert len(AlgorithmKind) == 6

    def test_objective_kind_covers_eq15(self):
        assert len(ObjectiveKind) == 3

    def test_constraint_handling_strategies(self):
        values = {handling.value for handling in ConstraintHandling}
        assert {"none", "exclude", "repair_tabu", "repair_cp", "penalty"} == values
