"""Unit tests: dynamic-scenario metrics and the dynamic metamorphic laws.

The metric definitions are pinned against tiny hand-computed window
fixtures (no scheduler involved), and each dynamic law is shown to both
hold on clean streams and *fail* under its matching fault injection —
proof the laws have teeth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocator import BatchOutcome
from repro.errors import ValidationError
from repro.evaluation.metrics import ScenarioMetrics, scenario_metrics
from repro.scheduler.window import WindowReport
from repro.verify.dynamic import DYNAMIC_LAWS, check_dynamic_laws


def _outcome(elapsed: float, violations: int, cost: float) -> BatchOutcome:
    return BatchOutcome(
        algorithm="fixture",
        assignment=np.array([0], dtype=np.int64),
        accepted=np.array([True]),
        violations=violations,
        violation_breakdown={},
        objectives=np.array([cost, 0.0, 0.0]),
        elapsed=elapsed,
    )


def _window(index: int, **overrides) -> WindowReport:
    fields = dict(
        window_index=index,
        start_time=float(index),
        end_time=float(index + 1),
        arrivals=(),
        departures=(),
        accepted=(),
        rejected=(),
        outcome=None,
    )
    fields.update(overrides)
    return WindowReport(**fields)


class TestScenarioMetricsFixtures:
    def test_hand_computed_totals(self):
        # Window 0: two arrivals, both accepted.
        # Window 1: server 3 fails; tenant "a" is displaced and
        #   re-accepted (1 SLA event), one fresh arrival rejected.
        # Window 2: server 5 drained; "b" is displaced AND its
        #   re-placement rejected (2 SLA events), "a" departs.
        reports = [
            _window(
                0,
                arrivals=("a", "b"),
                accepted=("a", "b"),
                outcome=_outcome(elapsed=0.5, violations=0, cost=10.0),
            ),
            _window(
                1,
                arrivals=("c",),
                accepted=("a",),
                rejected=("c",),
                failures=(3,),
                displaced=("a",),
                outcome=_outcome(elapsed=0.25, violations=2, cost=7.0),
            ),
            _window(
                2,
                departures=("a",),
                rejected=("b",),
                drains=(5,),
                displaced=("b",),
                outcome=_outcome(elapsed=0.25, violations=0, cost=3.0),
            ),
        ]
        metrics = scenario_metrics(reports, migration_moves=4)
        assert metrics == ScenarioMetrics(
            windows=3,
            arrivals=3,
            accepted=3,
            rejected=2,
            departures=1,
            displaced=2,
            failures=1,
            drains=1,
            execution_time=1.0,
            violations=2,
            provider_cost=20.0,
            sla_violations=3,  # "a" interrupted; "b" interrupted + lost
            migration_moves=4,
        )
        assert metrics.rejection_rate == pytest.approx(2 / 5)
        assert metrics.sla_violation_rate == pytest.approx(3 / 3)
        assert metrics.migration_churn == pytest.approx(4 / 3)

    def test_windows_without_outcome_cost_nothing(self):
        reports = [
            _window(0, arrivals=("a",), accepted=("a",),
                    outcome=_outcome(0.5, 1, 9.0)),
            _window(1),  # idle window: no batch was solved
        ]
        metrics = scenario_metrics(reports)
        assert metrics.windows == 2
        assert metrics.execution_time == pytest.approx(0.5)
        assert metrics.violations == 1
        assert metrics.provider_cost == pytest.approx(9.0)
        assert metrics.migration_moves == 0

    def test_zero_denominators_yield_zero_rates(self):
        metrics = scenario_metrics([_window(0)])
        assert metrics.rejection_rate == 0.0
        assert metrics.sla_violation_rate == 0.0
        assert ScenarioMetrics(
            windows=0, arrivals=0, accepted=0, rejected=0, departures=0,
            displaced=0, failures=0, drains=0, execution_time=0.0,
            violations=0, provider_cost=0.0, sla_violations=0,
            migration_moves=0,
        ).migration_churn == 0.0

    def test_empty_reports_rejected(self):
        with pytest.raises(ValidationError):
            scenario_metrics([])

    def test_as_row_shape_matches_header(self):
        row = scenario_metrics([_window(0)]).as_row()
        assert len(row) == 7


class TestDynamicLawRegressions:
    def test_laws_hold_on_clean_streams(self):
        for name in ("steady_churn", "maintenance_drain", "failure_storm"):
            report = check_dynamic_laws(name, seed=5)
            assert report.checks == len(DYNAMIC_LAWS)
            assert report.ok, report.format()

    def test_permutation_law_detects_unpermuted_genome(self):
        # Permuting the batch without permuting the genome must trip
        # the window-permutation law (seed chosen so the permuted
        # placement is semantically distinct).
        report = check_dynamic_laws(
            "steady_churn", seed=0, inject="permute_requests_only"
        )
        assert not report.ok
        assert any(
            v.law == "window_permutation" for v in report.violations
        )

    def test_time_shift_law_detects_misaligned_shift(self):
        report = check_dynamic_laws(
            "maintenance_drain", seed=5, inject="shift_misalign"
        )
        assert not report.ok
        assert any(v.law == "time_shift" for v in report.violations)

    def test_drain_fail_law_detects_dropped_drains(self):
        report = check_dynamic_laws(
            "maintenance_drain", seed=5, inject="drain_drop"
        )
        assert not report.ok
        assert any(
            v.law == "drain_fail_equivalence" for v in report.violations
        )

    def test_report_format_names_scenario(self):
        report = check_dynamic_laws("steady_churn", seed=5)
        assert "steady_churn" in report.format()
