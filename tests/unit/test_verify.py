"""Unit tests for the conformance subsystem: structured incremental
parity reports (including the corrupted-compilation failure branch),
the invariant catalog, the differential oracle's fault injection and
the ``repro verify`` CLI entry point."""

import numpy as np
import pytest

from repro.baselines import RoundRobinAllocator
from repro.cli import main
from repro.engine import CompiledProblem, ParityError
from repro.engine.incremental import CONSTRAINT_TERMS, OBJECTIVE_TERMS
from repro.model import Request
from repro.verify import (
    CheckContext,
    DifferentialOracle,
    FuzzConfig,
    invariant_names,
    run_fuzz,
    run_invariants,
)
from repro.workloads import ScenarioGenerator, ScenarioSpec


@pytest.fixture()
def scenario():
    spec = ScenarioSpec(servers=5, datacenters=2, vms=10, tightness=0.8)
    return ScenarioGenerator(spec, seed=17).generate()


@pytest.fixture()
def merged(scenario):
    request, _ = Request.concatenate(scenario.requests)
    return request


# ----------------------------------------------------------------------
# IncrementalEvaluator.verify(): the structured parity report
# ----------------------------------------------------------------------
def test_verify_returns_clean_structured_report(scenario, merged):
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    rng = np.random.default_rng(0)
    genome = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    state = compiled.incremental(genome, include_assignment=True)

    report = state.verify()
    assert report.ok
    assert not report.mismatches
    terms = tuple(d.term for d in report.deltas)
    assert terms == CONSTRAINT_TERMS + OBJECTIVE_TERMS
    assert {d.kind for d in report.deltas} == {"constraint", "objective"}
    # Per-term lookup and formatting are part of the diagnosis surface.
    assert report["usage_cost"].kind == "objective"
    assert report["capacity"].kind == "constraint"
    assert "usage_cost" in report.format()


def test_verify_flags_corrupted_compilation(scenario, merged):
    """A compilation whose cost table was tampered with must produce a
    per-term mismatch on exactly the affected objective, and the strict
    path must raise a ParityError carrying the report."""
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    # Corrupt the compiled per-resource cost rate: the incremental
    # totals are accumulated from this array, while the reference
    # evaluator recomputes the term from the infrastructure itself.
    compiled.per_resource_rate = compiled.per_resource_rate + 0.25

    rng = np.random.default_rng(1)
    genome = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    state = compiled.incremental(genome, include_assignment=True)

    report = state.verify(strict=False)
    assert not report.ok
    bad = {d.term for d in report.mismatches}
    assert bad == {"usage_cost"}
    delta = report["usage_cost"]
    assert delta.incremental > delta.reference
    assert np.isclose(delta.delta, 0.25 * merged.n)
    assert "usage_cost" in report.format()

    with pytest.raises(ParityError) as err:
        state.verify()
    assert err.value.report is not None
    assert not err.value.report.ok
    assert "usage_cost" in str(err.value)


def test_verify_flags_drifted_constraint_total(scenario, merged):
    """Constraint terms compare exactly: a one-off drift in the tracked
    capacity total must be reported as a constraint-kind mismatch."""
    compiled = CompiledProblem.compile(scenario.infrastructure, merged)
    rng = np.random.default_rng(2)
    genome = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    state = compiled.incremental(genome, include_assignment=True)
    state._cap_total += 1  # simulate a delta-bookkeeping bug

    report = state.verify(strict=False)
    assert not report.ok
    assert {d.term for d in report.mismatches} == {"capacity"}
    assert report["capacity"].kind == "constraint"


# ----------------------------------------------------------------------
# Invariant catalog
# ----------------------------------------------------------------------
def test_invariant_catalog_contains_documented_checkers():
    names = invariant_names()
    assert {
        "assignment_well_formed",
        "capacity_respected",
        "group_closure",
        "accepted_closure",
        "objective_finiteness",
        "pareto_front_non_domination",
    } <= set(names)


def test_invariants_pass_on_real_outcome(scenario):
    outcome = RoundRobinAllocator().allocate(
        scenario.infrastructure, scenario.requests
    )
    ctx = CheckContext(
        infrastructure=scenario.infrastructure,
        requests=scenario.requests,
        outcome=outcome,
    )
    report = run_invariants(ctx)
    assert report.ok, report.format()
    assert "accepted_closure" in report.checked


def test_invariants_flag_out_of_range_gene(scenario, merged):
    assignment = np.zeros(merged.n, dtype=np.int64)
    assignment[0] = scenario.infrastructure.m + 3
    ctx = CheckContext(
        infrastructure=scenario.infrastructure,
        requests=scenario.requests,
        assignment=assignment,
    )
    report = run_invariants(ctx, names=["assignment_well_formed"])
    assert not report.ok
    assert report.violations[0].invariant == "assignment_well_formed"


def test_invariants_flag_corrupted_accepted_mask(scenario):
    outcome = RoundRobinAllocator().allocate(
        scenario.infrastructure, scenario.requests
    )
    corrupted = outcome.accepted.copy()
    corrupted[0] = not corrupted[0]
    object.__setattr__(outcome, "accepted", corrupted)
    ctx = CheckContext(
        infrastructure=scenario.infrastructure,
        requests=scenario.requests,
        outcome=outcome,
    )
    report = run_invariants(ctx, names=["accepted_closure"])
    assert not report.ok


def test_invariants_flag_dominated_front(scenario):
    front = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
    ctx = CheckContext(
        infrastructure=scenario.infrastructure, front_objectives=front
    )
    report = run_invariants(ctx, names=["pareto_front_non_domination"])
    assert not report.ok


def test_invariants_flag_non_finite_objectives(scenario):
    ctx = CheckContext(
        infrastructure=scenario.infrastructure,
        objectives=np.array([1.0, np.inf, 0.0]),
    )
    report = run_invariants(ctx, names=["objective_finiteness"])
    assert not report.ok


# ----------------------------------------------------------------------
# Differential oracle: clean replay + fault injection self-test
# ----------------------------------------------------------------------
def test_oracle_clean_replay(scenario, merged):
    rng = np.random.default_rng(3)
    target = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    oracle = DifferentialOracle(scenario.infrastructure, merged)
    report = oracle.replay(target, seed=rng, detours=2, cp=False)
    assert report.ok, report.format()
    assert "incremental" in report.backends
    assert report.checks > 0


@pytest.mark.parametrize("term", CONSTRAINT_TERMS + OBJECTIVE_TERMS)
def test_oracle_detects_injected_fault_per_term(scenario, merged, term):
    """Fault injection on any single term must surface as a mismatch
    naming that term — the oracle's own false-negative self-test."""
    rng = np.random.default_rng(4)
    target = rng.integers(0, scenario.infrastructure.m, size=merged.n)
    oracle = DifferentialOracle(
        scenario.infrastructure, merged, perturb=(term, 0.5)
    )
    report = oracle.replay(target, seed=rng, detours=1, lp=False, cp=False)
    assert not report.ok
    assert any(
        d.term == term for mism in report.mismatches for d in mism.deltas
    )
    assert term in report.format()


def test_oracle_rejects_unknown_perturb_term(scenario, merged):
    with pytest.raises(Exception):
        DifferentialOracle(
            scenario.infrastructure, merged, perturb=("no_such_term", 1.0)
        )


# ----------------------------------------------------------------------
# Fuzz harness + CLI
# ----------------------------------------------------------------------
def test_run_fuzz_small_campaign_clean():
    config = FuzzConfig(scenarios=2, seed=123, sizes=((4, 8),))
    report = run_fuzz(config)
    assert report.ok, report.format()
    assert report.scenarios_run == 2
    assert report.oracle_checks > 0
    assert report.invariant_checks > 0
    assert report.law_checks > 0


def test_cli_verify_exits_zero_on_clean_run(capsys):
    code = main(
        ["verify", "--fuzz", "1", "--seed", "7", "--sizes", "4x8"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
    assert "verify.fuzz.scenarios" in out


def test_cli_verify_exits_nonzero_on_injected_fault(capsys):
    code = main(
        [
            "verify",
            "--fuzz",
            "1",
            "--seed",
            "7",
            "--sizes",
            "4x8",
            "--perturb",
            "downtime:0.25",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "downtime" in out
