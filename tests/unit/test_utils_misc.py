"""Unit tests for RNG plumbing, validators, timers and error types."""

import time

import numpy as np
import pytest

from repro import errors
from repro.errors import DimensionError, ValidationError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timers import Stopwatch, format_duration
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_fraction,
    check_nonnegative,
    check_positive_int,
    check_shape,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a, b = as_generator(42), as_generator(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_spawn_is_deterministic_and_independent(self):
        first = [g.integers(0, 10**9) for g in spawn_generators(7, 4)]
        second = [g.integers(0, 10**9) for g in spawn_generators(7, 4)]
        assert first == second
        assert len(set(first)) > 1  # streams differ from each other

    def test_spawn_prefix_stability(self):
        few = spawn_generators(3, 2)
        many = spawn_generators(3, 5)
        assert [g.integers(0, 10**9) for g in few] == [
            g.integers(0, 10**9) for g in many[:2]
        ]

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestValidation:
    def test_positive_int_accepts_numpy_ints(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_positive_int_rejects_bool_and_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_nonnegative_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_nonnegative(np.array([1.0, np.nan]), "x")

    def test_fraction_strict_upper(self):
        check_fraction(np.array([0.0, 0.999]), "x")
        with pytest.raises(ValidationError):
            check_fraction(np.array([1.0]), "x")
        check_fraction(np.array([1.0]), "x", strict_upper=False)

    def test_shape_mismatch_is_dimension_error(self):
        with pytest.raises(DimensionError):
            check_shape(np.ones((2, 3)), (3, 2), "x")

    def test_matrix_vector_coercion(self):
        m = as_float_matrix([[1, 2], [3, 4]], 2, 2, "m")
        assert m.dtype == np.float64 and m.flags.c_contiguous
        v = as_float_vector([1, 2, 3], 3, "v")
        assert v.shape == (3,)
        with pytest.raises(DimensionError):
            as_float_vector([1, 2], 3, "v")


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 1.0

    def test_accumulates_across_restarts(self):
        sw = Stopwatch()
        sw.start(); time.sleep(0.005); first = sw.stop()
        sw.start(); time.sleep(0.005); second = sw.stop()
        assert second > first

    def test_reset(self):
        sw = Stopwatch().start()
        sw.reset()
        assert sw.elapsed == 0.0 and not sw.running

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expect",
        [
            (90.0, "1 min 30.0 s"),
            (1.5, "1.50 s"),
            (0.25, "250.0 ms"),
            (5e-5, "50 us"),
        ],
    )
    def test_ranges(self, seconds, expect):
        assert format_duration(seconds) == expect

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)

    def test_dimension_is_model_error(self):
        assert issubclass(errors.DimensionError, errors.ModelError)
