"""Unit tests for the arrival-trace generator and its scheduler wiring."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator
from repro.errors import ValidationError
from repro.scheduler import TimeWindowScheduler, summarize_reports
from repro.workloads import ScenarioSpec, TraceGenerator, TraceSpec


@pytest.fixture
def scenario_spec():
    return ScenarioSpec(servers=16, datacenters=2, vms=32, tightness=0.5)


class TestTraceSpec:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TraceSpec(horizon=0)
        with pytest.raises(ValidationError):
            TraceSpec(arrival_rate=0)
        with pytest.raises(ValidationError):
            TraceSpec(mean_lifetime=-1)
        with pytest.raises(ValidationError):
            TraceSpec(failure_rate=-0.1)


class TestTraceGeneration:
    def test_events_within_horizon(self, scenario_spec):
        trace, requests = TraceGenerator(
            TraceSpec(horizon=8.0, arrival_rate=3.0), scenario_spec, seed=0
        ).generate()
        assert all(e.time < 8.0 for e in trace.arrivals)
        assert len(requests) == len(trace.arrivals)
        # Departures always after their arrival.
        arrival_times = {e.key: e.time for e in trace.arrivals}
        for departure in trace.departures:
            assert departure.time > arrival_times[departure.key]

    def test_deterministic(self, scenario_spec):
        spec = TraceSpec(horizon=6.0, arrival_rate=2.0)
        a, _ = TraceGenerator(spec, scenario_spec, seed=7).generate()
        b, _ = TraceGenerator(spec, scenario_spec, seed=7).generate()
        assert len(a) == len(b)
        assert [e.time for e in a.arrivals] == [e.time for e in b.arrivals]

    def test_arrival_count_tracks_rate(self, scenario_spec):
        slow, _ = TraceGenerator(
            TraceSpec(horizon=10.0, arrival_rate=1.0), scenario_spec, seed=1
        ).generate()
        fast, _ = TraceGenerator(
            TraceSpec(horizon=10.0, arrival_rate=6.0), scenario_spec, seed=1
        ).generate()
        assert len(fast.arrivals) > len(slow.arrivals)

    def test_infinite_lifetime_disables_departures(self, scenario_spec):
        trace, _ = TraceGenerator(
            TraceSpec(horizon=5.0, arrival_rate=2.0, mean_lifetime=float("inf")),
            scenario_spec,
            seed=2,
        ).generate()
        assert trace.departures == []

    def test_failures_paired_with_recoveries(self, scenario_spec):
        trace, _ = TraceGenerator(
            TraceSpec(horizon=10.0, arrival_rate=1.0, failure_rate=0.5),
            scenario_spec,
            seed=3,
        ).generate()
        assert len(trace.failures) == len(trace.recoveries)
        for failure, recovery in zip(trace.failures, trace.recoveries):
            assert recovery.time > failure.time
            assert 0 <= failure.server < scenario_spec.servers

    def test_all_events_sorted(self, scenario_spec):
        trace, _ = TraceGenerator(
            TraceSpec(horizon=6.0, arrival_rate=3.0, failure_rate=0.3),
            scenario_spec,
            seed=4,
        ).generate()
        times = [e.time for e in trace.all_events()]
        assert times == sorted(times)


class TestTraceThroughScheduler:
    def test_end_to_end(self, scenario_spec):
        from repro.workloads import ScenarioGenerator

        estate = ScenarioGenerator(scenario_spec, seed=5).generate().infrastructure
        trace, _ = TraceGenerator(
            TraceSpec(horizon=6.0, arrival_rate=2.0, failure_rate=0.2),
            scenario_spec,
            seed=5,
        ).generate()
        scheduler = TimeWindowScheduler(estate, FirstFitAllocator())
        trace.apply_to(scheduler)
        reports = scheduler.run(max_windows=64)
        scheduler.state.verify_consistency()
        summary = summarize_reports(reports)
        assert summary.arrivals == len(trace.arrivals)
        # Every arrival was decided (possibly repeatedly, via failures).
        assert summary.accepted + summary.rejected >= summary.arrivals
        assert summary.failures == len(trace.failures)
