"""Unit tests for instance pre-flight diagnosis."""

import numpy as np

from repro.model import AttributeSchema, PlacementGroup, Request
from repro.model.diagnosis import diagnose_instance
from repro.types import PlacementRule


def _request(demand, groups=(), schema=None):
    demand = np.asarray(demand, dtype=np.float64)
    n = demand.shape[0]
    kwargs = {}
    if schema is not None:
        kwargs["schema"] = schema
    return Request(
        demand=demand,
        qos_guarantee=np.full(n, 0.9),
        downtime_cost=np.ones(n),
        migration_cost=np.ones(n),
        groups=groups,
        **kwargs,
    )


class TestDiagnosis:
    def test_clean_instance_reports_nothing(self, small_infra, small_request):
        assert diagnose_instance(small_infra, small_request) == []

    def test_schema_mismatch_short_circuits(self, small_infra):
        request = _request(
            np.ones((2, 2)), schema=AttributeSchema(names=("a", "b"))
        )
        findings = diagnose_instance(small_infra, request)
        assert [f.code for f in findings] == ["schema_mismatch"]

    def test_unhostable_resource(self, small_infra):
        request = _request([[1e6, 1.0, 1.0]])
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "unhostable_resource" for f in findings)
        assert findings[0].resources == (0,)

    def test_aggregate_overcommit(self, small_infra):
        # Each VM fits somewhere, but 300 of them exceed the estate.
        per_vm = small_infra.effective_capacity.min(axis=0) * 0.5
        request = _request(np.tile(per_vm, (300, 1)))
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "aggregate_overcommit" for f in findings)

    def test_pigeonhole_datacenters(self, small_infra):
        request = _request(
            np.ones((3, 3)),
            groups=(
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1, 2)),
            ),
        )
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "pigeonhole_datacenters" for f in findings)

    def test_same_server_too_big(self, small_infra):
        biggest = small_infra.effective_capacity.max(axis=0)
        request = _request(
            np.tile(biggest * 0.7, (2, 1)),
            groups=(PlacementGroup(PlacementRule.SAME_SERVER, (0, 1)),),
        )
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "same_server_too_big" for f in findings)

    def test_contradictory_rules(self, small_infra):
        request = _request(
            np.ones((3, 3)),
            groups=(
                PlacementGroup(PlacementRule.SAME_SERVER, (0, 1, 2)),
                PlacementGroup(PlacementRule.DIFFERENT_SERVERS, (0, 1)),
            ),
        )
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "contradictory_rules" for f in findings)

    def test_same_dc_vs_diff_dc_contradiction(self, small_infra):
        request = _request(
            np.ones((2, 3)),
            groups=(
                PlacementGroup(PlacementRule.SAME_DATACENTER, (0, 1)),
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1)),
            ),
        )
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "contradictory_rules" for f in findings)

    def test_same_server_plus_diff_dc_contradiction(self, small_infra):
        request = _request(
            np.ones((2, 3)),
            groups=(
                PlacementGroup(PlacementRule.SAME_SERVER, (0, 1)),
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1)),
            ),
        )
        findings = diagnose_instance(small_infra, request)
        assert any(f.code == "contradictory_rules" for f in findings)

    def test_findings_agree_with_cp_infeasibility(self, small_infra):
        """Every diagnosed instance must actually be CP-infeasible
        (findings are sound)."""
        from repro.cp import CPSolver, SearchLimits

        bad_requests = [
            _request([[1e6, 1.0, 1.0]]),
            _request(
                np.ones((3, 3)),
                groups=(
                    PlacementGroup(
                        PlacementRule.DIFFERENT_DATACENTERS, (0, 1, 2)
                    ),
                ),
            ),
        ]
        for request in bad_requests:
            assert diagnose_instance(small_infra, request)
            solution = CPSolver(
                small_infra,
                request,
                limits=SearchLimits(max_nodes=100_000, time_limit=10),
            ).find_feasible()
            assert not solution.found and solution.proved
