"""Unit tests for Pareto-dominance primitives."""

import numpy as np
import pytest

from repro.utils.pareto import (
    dominance_matrix,
    dominates,
    ideal_point,
    nadir_point,
    non_dominated_mask,
    pareto_front_indices,
)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])

    def test_better_in_one_equal_other(self):
        assert dominates([1.0, 2.0], [2.0, 2.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_incomparable(self):
        assert not dominates([1.0, 3.0], [3.0, 1.0])
        assert not dominates([3.0, 1.0], [1.0, 3.0])

    def test_dominance_is_antisymmetric(self):
        a, b = np.array([1.0, 2.0]), np.array([2.0, 3.0])
        assert dominates(a, b) and not dominates(b, a)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestDominanceMatrix:
    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(0)
        objs = rng.random((12, 3))
        dom = dominance_matrix(objs)
        for i in range(12):
            for j in range(12):
                assert dom[i, j] == dominates(objs[i], objs[j])

    def test_diagonal_is_false(self):
        objs = np.random.default_rng(1).random((6, 2))
        assert not dominance_matrix(objs).diagonal().any()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            dominance_matrix(np.ones(3))


class TestFront:
    def test_single_point_is_front(self):
        assert pareto_front_indices(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_known_front(self):
        objs = np.array(
            [[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0], [5.0, 5.0]]
        )
        assert pareto_front_indices(objs).tolist() == [0, 1, 2]

    def test_mask_complements_dominated(self):
        objs = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert non_dominated_mask(objs).tolist() == [True, False]

    def test_duplicates_are_both_nondominated(self):
        objs = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert pareto_front_indices(objs).tolist() == [0, 1]


class TestIdealNadir:
    def test_ideal_is_componentwise_min(self):
        objs = np.array([[1.0, 5.0], [4.0, 2.0]])
        assert ideal_point(objs).tolist() == [1.0, 2.0]

    def test_nadir_over_front_only(self):
        objs = np.array([[1.0, 4.0], [4.0, 1.0], [10.0, 10.0]])
        assert nadir_point(objs).tolist() == [4.0, 4.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ideal_point(np.empty((0, 2)))
