"""Unit tests for the paired-bootstrap comparison tooling."""

import numpy as np
import pytest

from repro.baselines import BestFitAllocator, WorstFitAllocator
from repro.errors import ValidationError
from repro.evaluation import ExperimentRunner
from repro.evaluation.metrics import RunRecord
from repro.evaluation.stats import (
    bootstrap_ci,
    compare_algorithms,
    paired_differences,
)
from repro.workloads import ScenarioSpec


def _record(algorithm, seed, cost, servers=10, vms=20):
    return RunRecord(
        algorithm=algorithm,
        servers=servers,
        vms=vms,
        requests=5,
        elapsed=0.1,
        rejection_rate=0.0,
        violations=0,
        provider_cost=cost,
        downtime_cost=0.0,
        migration_cost=0.0,
        seed=seed,
    )


class TestPairedDifferences:
    def test_pairs_by_scenario(self):
        a = [_record("a", 0, 10.0), _record("a", 1, 20.0)]
        b = [_record("b", 1, 15.0), _record("b", 0, 5.0)]  # shuffled order
        diffs = paired_differences(a, b, "provider_cost")
        assert sorted(diffs.tolist()) == [5.0, 5.0]

    def test_mismatched_scenarios_rejected(self):
        a = [_record("a", 0, 10.0)]
        b = [_record("b", 1, 10.0)]
        with pytest.raises(ValidationError):
            paired_differences(a, b, "provider_cost")

    def test_duplicate_rejected(self):
        a = [_record("a", 0, 10.0), _record("a", 0, 11.0)]
        with pytest.raises(ValidationError):
            paired_differences(a, a, "provider_cost")

    def test_unknown_metric_rejected(self):
        a = [_record("a", 0, 10.0)]
        with pytest.raises(ValidationError):
            paired_differences(a, a, "bogus")


class TestBootstrap:
    def test_ci_contains_mean_for_tight_sample(self):
        sample = np.full(50, 3.0) + np.random.default_rng(0).normal(0, 0.01, 50)
        low, high = bootstrap_ci(sample, seed=1)
        assert low <= sample.mean() <= high
        assert high - low < 0.05

    def test_ci_widens_with_noise(self):
        rng = np.random.default_rng(2)
        tight = bootstrap_ci(rng.normal(0, 0.1, 40), seed=3)
        loose = bootstrap_ci(rng.normal(0, 5.0, 40), seed=3)
        assert (loose[1] - loose[0]) > (tight[1] - tight[0])

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValidationError):
            bootstrap_ci(np.ones(3), confidence=1.5)


class TestCompareAlgorithms:
    def test_clear_difference_is_significant(self):
        records = []
        rng = np.random.default_rng(4)
        for seed in range(20):
            records.append(_record("cheap", seed, 10.0 + rng.normal(0, 0.5)))
            records.append(_record("pricey", seed, 20.0 + rng.normal(0, 0.5)))
        from repro.evaluation import SweepResult

        result = SweepResult(records=records)
        comparison = compare_algorithms(result, "cheap", "pricey", "provider_cost")
        assert comparison.mean_difference < 0
        assert comparison.significant
        assert comparison.n_pairs == 20

    def test_identical_algorithms_not_significant(self):
        records = []
        for seed in range(10):
            records.append(_record("x", seed, 10.0))
            records.append(_record("y", seed, 10.0))
        from repro.evaluation import SweepResult

        result = SweepResult(records=records)
        comparison = compare_algorithms(result, "x", "y", "provider_cost")
        assert comparison.mean_difference == 0.0
        assert not comparison.significant

    def test_on_real_sweep(self):
        runner = ExperimentRunner(
            {"best_fit": BestFitAllocator, "worst_fit": WorstFitAllocator},
            runs=4,
            seed=5,
        )
        result = runner.run_sweep(
            [ScenarioSpec(servers=12, vms=24, tightness=0.5, heterogeneity=0.4)]
        )
        comparison = compare_algorithms(
            result, "best_fit", "worst_fit", "provider_cost"
        )
        # Best-fit consolidates onto cheap servers; with heterogeneous
        # costs its provider cost is never higher on paired scenarios.
        assert comparison.mean_difference <= 1e-9

    def test_missing_algorithm_rejected(self):
        from repro.evaluation import SweepResult

        result = SweepResult(records=[_record("x", 0, 1.0)])
        with pytest.raises(ValidationError):
            compare_algorithms(result, "x", "ghost", "provider_cost")
