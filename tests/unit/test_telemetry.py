"""Unit tests for the repro.telemetry subsystem itself (registry,
tracer, events, sinks, config) plus the timer primitives it builds on."""

import json
import time

import pytest

from repro.errors import ValidationError
from repro.telemetry import (
    ConsoleSink,
    EventBus,
    GenerationCompleted,
    HistogramSummary,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    MetricsSnapshot,
    NullSink,
    RequestRejected,
    Tracer,
    WindowClosed,
    capture_events,
    configure,
    get_bus,
    get_registry,
    get_tracer,
    series_key,
    shutdown,
    span,
    use_registry,
    use_tracer,
)
from repro.utils.timers import Stopwatch, format_duration


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_series(self):
        registry = MetricsRegistry()
        registry.count("requests", 2, algorithm="nsga3")
        registry.count("requests", 3, algorithm="nsga3")
        registry.count("requests", 5, algorithm="cp")
        snapshot = registry.snapshot()
        assert snapshot.counters[series_key("requests", {"algorithm": "nsga3"})] == 5
        assert snapshot.counters[series_key("requests", {"algorithm": "cp"})] == 5
        assert snapshot.counter_total("requests") == 10

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.count("x", 1, a=1, b=2)
        registry.count("x", 1, b=2, a=1)
        assert registry.snapshot().counters == {"x{a=1,b=2}": 2.0}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("pool", 3)
        registry.gauge("pool", 7)
        assert registry.snapshot().gauges["pool"] == 7

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("latency", value)
        summary = registry.snapshot().histograms["latency"]
        assert summary.count == 3
        assert summary.total == 6.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == 2.0

    def test_snapshot_is_immutable_copy(self):
        registry = MetricsRegistry()
        registry.count("x")
        snapshot = registry.snapshot()
        registry.count("x")
        assert snapshot.counters["x"] == 1.0

    def test_merged_snapshot_equals_sum_of_worker_snapshots(self):
        """The parallel-runner contract: folding per-worker snapshots
        is exact summation for counters and histograms."""
        workers = []
        for w in range(3):
            registry = MetricsRegistry()
            registry.count("cells", w + 1, algorithm="ff")
            registry.observe("seconds", 0.5 * (w + 1))
            workers.append(registry.snapshot())

        merged = MetricsSnapshot.merge_all(workers)
        assert merged.counters[series_key("cells", {"algorithm": "ff"})] == 6.0
        assert merged.histograms["seconds"] == HistogramSummary(
            count=3, total=3.0, minimum=0.5, maximum=1.5
        )
        # Associativity: pairwise + equals merge_all.
        pairwise = workers[0] + workers[1] + workers[2]
        assert pairwise.counters == merged.counters
        assert pairwise.histograms == merged.histograms

    def test_registry_merge_folds_snapshot(self):
        parent = MetricsRegistry()
        parent.count("x", 1)
        child = MetricsRegistry()
        child.count("x", 2)
        child.observe("h", 1.0)
        parent.merge(child.snapshot())
        snapshot = parent.snapshot()
        assert snapshot.counters["x"] == 3.0
        assert snapshot.histograms["h"].count == 1

    def test_use_registry_scopes_default(self):
        scoped = MetricsRegistry()
        outside = get_registry()
        with use_registry(scoped):
            assert get_registry() is scoped
            get_registry().count("inside")
        assert get_registry() is outside
        assert "inside" in scoped.snapshot().counters
        assert "inside" not in outside.snapshot().counters

    def test_reset_and_empty(self):
        registry = MetricsRegistry()
        assert registry.snapshot().empty
        registry.count("x")
        assert not registry.snapshot().empty
        registry.reset()
        assert registry.snapshot().empty

    def test_format_summary_mentions_every_kind(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.gauge("g", 1)
        registry.observe("h", 2.0)
        text = registry.format_summary()
        assert "counter" in text and "gauge" in text and "histogram" in text


class TestTracer:
    def test_default_tracer_disabled_spans_are_noops(self):
        assert not get_tracer().enabled
        with span("anything", x=1) as record:
            assert record is None
        assert get_tracer().roots == []

    def test_enabled_tracer_builds_tree(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with span("outer", run=1):
                with span("inner"):
                    time.sleep(0.001)
                with span("inner"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.elapsed >= sum(c.elapsed for c in outer.children)
        assert outer.self_time >= -1e-9
        # Children started after their predecessors, offsets ascend.
        offsets = [c.start_offset for c in outer.children]
        assert offsets == sorted(offsets)
        assert all(o >= 0 for o in offsets)

    def test_walk_and_format_tree(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with span("a"):
                with span("b", gen=3):
                    pass
        names = [record.name for record in tracer.roots[0].walk()]
        assert names == ["a", "b"]
        rendered = tracer.format_tree()
        assert "a" in rendered and "b gen=3" in rendered

    def test_reset_drops_roots(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with span("x"):
                pass
        tracer.reset()
        assert tracer.roots == []


class TestEventBus:
    def test_emit_without_sinks_is_noop(self):
        bus = EventBus()
        assert not bus.enabled
        bus.emit(RequestRejected(key="a", window_index=0, reason="capacity"))

    def test_sink_receives_in_order(self):
        bus = EventBus()
        sink = InMemorySink()
        bus.subscribe(sink)
        assert bus.enabled
        first = RequestRejected(key="a", window_index=0, reason="capacity")
        second = WindowClosed(
            window_index=0, start_time=0.0, end_time=1.0, arrivals=1,
            departures=0, accepted=0, rejected=1, displaced=0, failures=0,
            recoveries=0,
        )
        bus.emit(first)
        bus.emit(second)
        assert sink.events == [first, second]
        assert sink.of(WindowClosed) == [second]
        bus.unsubscribe(sink)
        assert not bus.enabled

    def test_subscribe_idempotent_unsubscribe_tolerant(self):
        bus = EventBus()
        sink = NullSink()
        bus.subscribe(sink)
        bus.subscribe(sink)
        assert bus._sinks.count(sink) == 1
        bus.unsubscribe(sink)
        bus.unsubscribe(sink)  # no raise

    def test_capture_events_detaches_on_exit(self):
        event = RequestRejected(key="k", window_index=1, reason="capacity")
        with capture_events() as sink:
            get_bus().emit(event)
        assert sink.events == [event]
        assert not get_bus().enabled

    def test_event_to_dict_roundtrips_json(self):
        event = GenerationCompleted(
            algorithm="nsga3", generation=4, evaluations=100,
            best_aggregate=1.5, mean_aggregate=2.5, feasible_fraction=0.75,
            min_violations=0,
        )
        payload = json.loads(json.dumps(event.to_dict()))
        assert payload["event"] == "generation_completed"
        assert payload["generation"] == 4


class TestSinksAndConfig:
    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.handle(RequestRejected(key="a", window_index=2, reason="displaced"))
        sink.close()
        [line] = path.read_text().splitlines()
        payload = json.loads(line)
        assert payload["event"] == "request_rejected"
        assert payload["reason"] == "displaced"
        assert "ts" in payload

    def test_console_sink_formats_line(self, capsys):
        import sys

        sink = ConsoleSink(stream=sys.stdout)
        sink.handle(RequestRejected(key="a", window_index=0, reason="capacity"))
        out = capsys.readouterr().out
        assert "[telemetry] request_rejected" in out
        assert "key=a" in out

    def test_configure_off_and_none(self):
        assert configure(None) is None
        assert configure("off") is None

    def test_configure_jsonl_and_shutdown(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = configure(f"jsonl:{path}")
        try:
            assert get_bus().enabled
            get_bus().emit(
                RequestRejected(key="x", window_index=0, reason="capacity")
            )
        finally:
            shutdown(sink)
        assert not get_bus().enabled
        assert path.read_text().count("\n") == 1

    def test_configure_console_and_memory(self):
        for spec in ("console", "memory"):
            sink = configure(spec)
            try:
                assert get_bus().enabled
            finally:
                shutdown(sink)

    def test_configure_rejects_bad_specs(self):
        with pytest.raises(ValidationError):
            configure("jsonl:")
        with pytest.raises(ValidationError):
            configure("statsd:localhost")


class TestTimerPrimitives:
    def test_format_duration_clamps_negative_noise(self):
        assert format_duration(-1e-12) == "0 us"
        assert format_duration(-9e-10) == "0 us"

    def test_format_duration_still_rejects_real_negatives(self):
        with pytest.raises(ValueError):
            format_duration(-1e-9)
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_split_returns_in_flight_lap(self):
        stopwatch = Stopwatch().start()
        first = stopwatch.split()
        time.sleep(0.002)
        second = stopwatch.split()
        assert second > first >= 0.0
        assert stopwatch.running  # split does not stop

    def test_split_excludes_previous_segments(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        time.sleep(0.002)
        stopwatch.stop()
        assert stopwatch.split() == 0.0  # stopped: no in-flight lap
        stopwatch.start()
        assert stopwatch.split() < stopwatch.elapsed
