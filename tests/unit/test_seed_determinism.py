"""Seed-determinism regressions across the solver portfolio.

Reproducibility is an acceptance criterion of the evaluation harness:
the same seed must yield byte-identical genomes and objective vectors
on repeated runs, and (for the stochastic solvers) different seeds must
explore differently.  These tests pin that contract for the hybrid
NSGA-III allocator, the standalone tabu search, the CP allocator and
the round-robin baseline.
"""

import numpy as np
import pytest

from repro.baselines import RoundRobinAllocator
from repro.cp import CPAllocator, SearchLimits
from repro.ea import NSGAConfig
from repro.hybrid import NSGA3TabuAllocator
from repro.model import Request
from repro.objectives import PopulationEvaluator
from repro.tabu import TabuSearch
from repro.workloads import ScenarioGenerator, ScenarioSpec


@pytest.fixture(scope="module")
def scenario():
    spec = ScenarioSpec(servers=6, datacenters=2, vms=12, tightness=0.8)
    return ScenarioGenerator(spec, seed=42).generate()


def _identical(a, b):
    """Byte-identical outcomes: genome and objective vector."""
    return (
        a.assignment.tobytes() == b.assignment.tobytes()
        and a.objectives.tobytes() == b.objectives.tobytes()
    )


def _nsga_config(seed):
    return NSGAConfig(
        population_size=12,
        max_evaluations=120,
        reference_point_divisions=4,
        seed=seed,
    )


def test_nsga3_tabu_same_seed_byte_identical(scenario):
    runs = [
        NSGA3TabuAllocator(config=_nsga_config(5)).allocate(
            scenario.infrastructure, scenario.requests
        )
        for _ in range(2)
    ]
    assert _identical(runs[0], runs[1])


def test_nsga3_tabu_different_seeds_differ(scenario):
    a = NSGA3TabuAllocator(config=_nsga_config(5)).allocate(
        scenario.infrastructure, scenario.requests
    )
    b = NSGA3TabuAllocator(config=_nsga_config(6)).allocate(
        scenario.infrastructure, scenario.requests
    )
    # Population trajectories must diverge; on this instance the
    # selected genomes differ (if both converged to one global optimum
    # this assertion would need a harder instance, not a looser check).
    assert not _identical(a, b)


def test_tabu_search_same_seed_byte_identical(scenario):
    merged, _ = Request.concatenate(scenario.requests)
    rng = np.random.default_rng(0)
    initial = rng.integers(0, scenario.infrastructure.m, size=merged.n)

    def run(seed):
        evaluator = PopulationEvaluator(scenario.infrastructure, merged)
        search = TabuSearch(
            evaluator, max_iterations=60, neighborhood_size=16, seed=seed
        )
        return search.run(initial)

    a, b = run(9), run(9)
    assert a.assignment.tobytes() == b.assignment.tobytes()
    assert a.objectives.tobytes() == b.objectives.tobytes()
    assert a.evaluations == b.evaluations

    c = run(10)
    assert (
        a.assignment.tobytes() != c.assignment.tobytes()
        or a.objectives.tobytes() != c.objectives.tobytes()
    )


def test_cp_allocator_is_deterministic(scenario):
    limits = SearchLimits(max_nodes=5_000, time_limit=5.0)
    runs = [
        CPAllocator(limits=limits).allocate(
            scenario.infrastructure, scenario.requests
        )
        for _ in range(2)
    ]
    assert _identical(runs[0], runs[1])
    assert runs[0].accepted.tobytes() == runs[1].accepted.tobytes()


def test_round_robin_same_seed_byte_identical(scenario):
    runs = [
        RoundRobinAllocator(seed=3).allocate(
            scenario.infrastructure, scenario.requests
        )
        for _ in range(2)
    ]
    assert _identical(runs[0], runs[1])
    assert runs[0].accepted.tobytes() == runs[1].accepted.tobytes()
