"""Unit tests for the constraint-programming solver."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet
from repro.cp import CPSearch, CPSolver, DomainStore, SearchLimits
from repro.errors import ValidationError
from repro.model import PlacementGroup, Request
from repro.types import PlacementRule


class TestDomainStore:
    def test_initial_full(self):
        store = DomainStore(3, 4)
        assert store.domain_sizes().tolist() == [4, 4, 4]

    def test_remove_and_restore(self):
        store = DomainStore(2, 3)
        store.push()
        assert store.remove_value(0, 1)
        assert store.candidates(0).tolist() == [0, 2]
        store.pop()
        assert store.candidates(0).tolist() == [0, 1, 2]

    def test_nested_frames(self):
        store = DomainStore(1, 4)
        store.push()
        store.remove_value(0, 0)
        store.push()
        store.remove_value(0, 1)
        assert store.candidates(0).tolist() == [2, 3]
        store.pop()
        assert store.candidates(0).tolist() == [1, 2, 3]
        store.pop()
        assert store.candidates(0).tolist() == [0, 1, 2, 3]

    def test_assign_collapses(self):
        store = DomainStore(1, 4)
        store.push()
        assert store.assign(0, 2)
        assert store.candidates(0).tolist() == [2]

    def test_assign_removed_value_fails(self):
        store = DomainStore(1, 3)
        store.push()
        store.remove_value(0, 1)
        assert not store.assign(0, 1)

    def test_wipeout_reported(self):
        store = DomainStore(1, 2)
        store.push()
        store.remove_value(0, 0)
        assert not store.remove_value(0, 1)
        assert store.is_empty(0)

    def test_restrict_to(self):
        store = DomainStore(1, 4)
        store.push()
        allowed = np.array([False, True, False, True])
        assert store.restrict_to(0, allowed)
        assert store.candidates(0).tolist() == [1, 3]

    def test_pop_without_push_rejected(self):
        with pytest.raises(ValidationError):
            DomainStore(1, 2).pop()


class TestCPSolve:
    def test_finds_feasible_and_respects_constraints(
        self, small_infra, small_request
    ):
        solution = CPSolver(small_infra, small_request).find_feasible()
        assert solution.found
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(solution.assignment) == 0

    def test_optimize_not_worse_than_feasible(self, small_infra, small_request):
        solver = CPSolver(small_infra, small_request)
        feasible = solver.find_feasible()
        optimal = solver.optimize()
        assert optimal.found and optimal.cost <= feasible.cost + 1e-9

    def test_optimal_is_cheapest_rate_placement(self, tiny_infra, tiny_request):
        # Both VMs fit on server 0 (rate 1.5) -> optimal cost 3.0.
        solution = CPSolver(tiny_infra, tiny_request).optimize()
        assert solution.found and solution.proved
        assert solution.cost == pytest.approx(3.0)
        assert solution.assignment.tolist() == [0, 0]

    def test_proves_infeasibility(self, small_infra):
        # Demand larger than any server on CPU.
        request = Request(
            demand=np.array([[1000.0, 1.0, 1.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        solution = CPSolver(small_infra, request).find_feasible()
        assert not solution.found and solution.proved

    def test_pigeonhole_different_datacenters(self, small_infra):
        # 3 resources must be in different datacenters but g = 2.
        request = Request(
            demand=np.ones((3, 3)),
            qos_guarantee=np.full(3, 0.9),
            downtime_cost=np.ones(3),
            migration_cost=np.ones(3),
            groups=(
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1, 2)),
            ),
        )
        solution = CPSolver(small_infra, request).find_feasible()
        assert not solution.found and solution.proved

    def test_node_limit_aborts(self, small_infra, small_request):
        solver = CPSolver(
            small_infra, small_request, limits=SearchLimits(max_nodes=1)
        )
        solution = solver.find_feasible()
        assert solution.stats.aborted or solution.found

    def test_base_usage_respected(self, tiny_infra, tiny_request):
        # Fill server 0 entirely: the only feasible host is server 1.
        base = np.zeros((2, 2))
        base[0] = tiny_infra.effective_capacity[0]
        solution = CPSolver(
            tiny_infra, tiny_request, base_usage=base
        ).find_feasible()
        assert solution.found
        assert solution.assignment.tolist() == [1, 1]

    def test_value_order_validated(self, small_infra, small_request):
        with pytest.raises(ValidationError):
            CPSearch(small_infra, small_request, value_order="bogus")

    def test_search_stats_populated(self, small_infra, small_request):
        solver = CPSolver(small_infra, small_request)
        solution = solver.optimize()
        assert solution.stats.nodes > 0
        assert solution.stats.elapsed >= 0
        assert solution.stats.solutions >= 1


class TestCPGroupPropagation:
    def _solve(self, infra, request):
        return CPSolver(infra, request).find_feasible()

    def test_same_server_group_lands_together(self, small_infra):
        request = Request(
            demand=np.ones((3, 3)),
            qos_guarantee=np.full(3, 0.9),
            downtime_cost=np.ones(3),
            migration_cost=np.ones(3),
            groups=(PlacementGroup(PlacementRule.SAME_SERVER, (0, 1, 2)),),
        )
        solution = self._solve(small_infra, request)
        assert solution.found
        assert len(set(solution.assignment.tolist())) == 1

    def test_same_datacenter_group(self, small_infra):
        request = Request(
            demand=np.ones((2, 3)),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
            groups=(PlacementGroup(PlacementRule.SAME_DATACENTER, (0, 1)),),
        )
        solution = self._solve(small_infra, request)
        dcs = small_infra.server_datacenter[solution.assignment]
        assert dcs[0] == dcs[1]

    def test_different_servers_group(self, small_infra):
        request = Request(
            demand=np.ones((4, 3)),
            qos_guarantee=np.full(4, 0.9),
            downtime_cost=np.ones(4),
            migration_cost=np.ones(4),
            groups=(
                PlacementGroup(PlacementRule.DIFFERENT_SERVERS, (0, 1, 2, 3)),
            ),
        )
        solution = self._solve(small_infra, request)
        assert len(set(solution.assignment.tolist())) == 4

    def test_different_datacenters_group(self, small_infra):
        request = Request(
            demand=np.ones((2, 3)),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
            groups=(
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (0, 1)),
            ),
        )
        solution = self._solve(small_infra, request)
        dcs = small_infra.server_datacenter[solution.assignment]
        assert dcs[0] != dcs[1]


class TestCPRepair:
    def test_repairs_broken_genome(self, small_infra, small_request):
        solver = CPSolver(small_infra, small_request)
        broken = np.array([0, 1, 2, 3, 4, 5])
        fixed = solver.repair_genome(broken)
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(fixed) == 0

    def test_feasible_genome_preserved(self, small_infra, small_request):
        solver = CPSolver(small_infra, small_request)
        feasible = np.array([0, 0, 2, 3, 4, 5])
        fixed = solver.repair_population(np.vstack([feasible]))
        assert np.array_equal(fixed[0], feasible)

    def test_budget_exhaustion_returns_unchanged(self, small_infra, small_request):
        solver = CPSolver(
            small_infra, small_request, limits=SearchLimits(max_nodes=1)
        )
        broken = np.array([0, 1, 2, 3, 4, 5])
        fixed = solver.repair_genome(broken)
        # Either repaired (found fast) or returned as-is; never garbage.
        assert fixed.shape == broken.shape
        assert fixed.min() >= 0 and fixed.max() < small_infra.m
