"""Unit tests for requests, placement groups and the placement encoding."""

import numpy as np
import pytest

from repro.errors import ConstraintError, EncodingError, ValidationError
from repro.model import (
    AttributeSchema,
    Infrastructure,
    Placement,
    PlacementGroup,
    Request,
    VirtualResource,
)
from repro.model.placement import UNPLACED
from repro.types import PlacementRule


class TestPlacementGroup:
    def test_needs_two_members(self):
        with pytest.raises(ConstraintError):
            PlacementGroup(PlacementRule.SAME_SERVER, (0,))

    def test_duplicates_rejected(self):
        with pytest.raises(ConstraintError):
            PlacementGroup(PlacementRule.SAME_SERVER, (1, 1))

    def test_negative_rejected(self):
        with pytest.raises(ConstraintError):
            PlacementGroup(PlacementRule.SAME_SERVER, (-1, 2))

    def test_rule_family_flags(self):
        assert PlacementRule.SAME_SERVER.is_affinity
        assert PlacementRule.SAME_DATACENTER.is_affinity
        assert PlacementRule.DIFFERENT_SERVERS.is_anti_affinity
        assert PlacementRule.DIFFERENT_DATACENTERS.is_anti_affinity


class TestRequest:
    def test_sizes(self, small_request):
        assert (small_request.n, small_request.h) == (6, 3)

    def test_group_out_of_range_rejected(self):
        with pytest.raises(ConstraintError):
            Request(
                demand=np.ones((2, 3)),
                qos_guarantee=np.full(2, 0.9),
                downtime_cost=np.ones(2),
                migration_cost=np.ones(2),
                groups=(PlacementGroup(PlacementRule.SAME_SERVER, (0, 5)),),
            )

    def test_total_demand(self, small_request):
        assert np.allclose(
            small_request.total_demand(), small_request.demand.sum(axis=0)
        )

    def test_groups_of(self, small_request):
        assert len(small_request.groups_of(PlacementRule.SAME_SERVER)) == 1
        assert len(small_request.groups_of(PlacementRule.SAME_DATACENTER)) == 0

    def test_from_resources(self):
        request = Request.from_resources(
            [VirtualResource(demand=[1, 2, 3]), VirtualResource(demand=[4, 5, 6])]
        )
        assert request.n == 2
        assert request.demand[1].tolist() == [4.0, 5.0, 6.0]

    def test_concatenate_shifts_groups(self, small_request):
        merged, owner = Request.concatenate([small_request, small_request])
        assert merged.n == 12
        assert owner.tolist() == [0] * 6 + [1] * 6
        # The second copy's groups must reference the shifted indices.
        shifted = merged.groups[2]
        assert shifted.members == (6, 7)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValidationError):
            Request.concatenate([])

    def test_qos_guarantee_range(self):
        with pytest.raises(ValidationError):
            Request(
                demand=np.ones((1, 3)),
                qos_guarantee=np.array([1.5]),
                downtime_cost=np.ones(1),
                migration_cost=np.ones(1),
            )


class TestPlacement:
    def test_roundtrip_dense(self, small_infra):
        assignment = np.array([0, 0, 3, 5, UNPLACED, 7])
        placement = Placement(assignment=assignment, infrastructure=small_infra)
        dense = placement.to_dense()
        assert dense.shape == (2, 8, 6)
        back = Placement.from_dense(dense, small_infra)
        assert np.array_equal(back.assignment, assignment)

    def test_dense_encodes_datacenter(self, small_infra):
        placement = Placement(
            assignment=np.array([5]), infrastructure=small_infra
        )
        dense = placement.to_dense()
        assert dense[1, 5, 0]  # server 5 lives in datacenter 1
        assert dense.sum() == 1

    def test_from_dense_rejects_double_placement(self, small_infra):
        dense = np.zeros((2, 8, 1), dtype=bool)
        dense[0, 0, 0] = True
        dense[0, 1, 0] = True
        with pytest.raises(EncodingError):
            Placement.from_dense(dense, small_infra)

    def test_from_dense_rejects_wrong_datacenter(self, small_infra):
        dense = np.zeros((2, 8, 1), dtype=bool)
        dense[0, 5, 0] = True  # server 5 is in datacenter 1, not 0
        with pytest.raises(EncodingError):
            Placement.from_dense(dense, small_infra)

    def test_out_of_range_server_rejected(self, small_infra):
        with pytest.raises(EncodingError):
            Placement(assignment=np.array([8]), infrastructure=small_infra)

    def test_server_usage_scatter(self, small_infra, small_request):
        assignment = np.array([2, 2, 2, 0, UNPLACED, 0])
        placement = Placement(assignment=assignment, infrastructure=small_infra)
        usage = placement.server_usage(small_request.demand)
        assert np.allclose(
            usage[2], small_request.demand[[0, 1, 2]].sum(axis=0)
        )
        assert np.allclose(usage[0], small_request.demand[[3, 5]].sum(axis=0))
        assert np.allclose(usage[1], 0.0)

    def test_loads_zero_capacity_semantics(self):
        infra = Infrastructure(
            capacity=np.array([[0.0, 10.0]]),
            capacity_factor=np.ones((1, 2)),
            operating_cost=np.ones(1),
            usage_cost=np.ones(1),
            max_load=np.full((1, 2), 0.5),
            max_qos=np.full((1, 2), 0.9),
            server_datacenter=np.array([0]),
            schema=AttributeSchema(names=("a", "b")),
        )
        placement = Placement(assignment=np.array([0]), infrastructure=infra)
        loads = placement.loads(np.array([[1.0, 5.0]]))
        assert np.isinf(loads[0, 0])
        assert loads[0, 1] == 0.5

    def test_with_assignment_copies(self, small_infra):
        placement = Placement(
            assignment=np.array([0, 1]), infrastructure=small_infra
        )
        moved = placement.with_assignment(0, 7)
        assert placement.assignment[0] == 0
        assert moved.assignment[0] == 7

    def test_equality_and_hash(self, small_infra):
        a = Placement(assignment=np.array([0, 1]), infrastructure=small_infra)
        b = Placement(assignment=np.array([0, 1]), infrastructure=small_infra)
        c = Placement(assignment=np.array([1, 0]), infrastructure=small_infra)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_datacenter_of(self, small_infra):
        placement = Placement(
            assignment=np.array([0, 6, UNPLACED]), infrastructure=small_infra
        )
        assert placement.datacenter_of().tolist() == [0, 1, UNPLACED]

    def test_is_complete(self, small_infra):
        full = Placement(assignment=np.array([0, 1]), infrastructure=small_infra)
        partial = Placement(
            assignment=np.array([0, UNPLACED]), infrastructure=small_infra
        )
        assert full.is_complete and not partial.is_complete
