"""Unit tests for the ILP model assembly and the HiGHS solve path."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet
from repro.lp import ILPModel, solve_ilp
from repro.model import PlacementGroup, Request
from repro.types import PlacementRule


class TestModelAssembly:
    def test_variable_count(self, small_infra, small_request):
        model = ILPModel.build(small_infra, small_request)
        assert model.n_variables == small_request.n * small_infra.m

    def test_objective_tiles_rates(self, small_infra, small_request):
        model = ILPModel.build(small_infra, small_request)
        rate = small_infra.operating_cost + small_infra.usage_cost
        assert np.allclose(model.objective[: small_infra.m], rate)
        assert np.allclose(model.objective[small_infra.m : 2 * small_infra.m], rate)

    def test_assignment_rows(self, small_infra, small_request):
        model = ILPModel.build(small_infra, small_request)
        # Encoding a valid placement must satisfy A_eq x = b_eq.
        x = np.zeros(model.n_variables)
        genome = [0, 0, 2, 3, 4, 5]
        for k, j in enumerate(genome):
            x[k * small_infra.m + j] = 1.0
        assert model.check(x)

    def test_check_rejects_capacity_violation(self, small_infra):
        request = Request(
            demand=np.tile(small_infra.effective_capacity[0] * 0.9, (2, 1)),
            qos_guarantee=np.full(2, 0.9),
            downtime_cost=np.ones(2),
            migration_cost=np.ones(2),
        )
        model = ILPModel.build(small_infra, request)
        x = np.zeros(model.n_variables)
        x[0 * small_infra.m + 0] = 1.0  # both on server 0: overload
        x[1 * small_infra.m + 0] = 1.0
        assert not model.check(x)

    def test_decode(self, small_infra, small_request):
        model = ILPModel.build(small_infra, small_request)
        x = np.zeros(model.n_variables)
        genome = [1, 1, 2, 3, 4, 5]
        for k, j in enumerate(genome):
            x[k * small_infra.m + j] = 1.0
        assert model.decode(x).tolist() == genome

    def test_base_usage_tightens_rhs(self, small_infra, small_request):
        base = np.full(
            (small_infra.m, small_infra.h), 1.0
        )
        loose = ILPModel.build(small_infra, small_request)
        tight = ILPModel.build(small_infra, small_request, base_usage=base)
        assert np.all(tight.b_ub[: small_infra.m * 3] <= loose.b_ub[: small_infra.m * 3])


class TestSolve:
    def test_solution_is_feasible_placement(self, small_infra, small_request):
        solution = solve_ilp(small_infra, small_request, time_limit=30)
        assert solution.optimal
        constraint_set = ConstraintSet(
            small_infra, small_request, include_assignment=False
        )
        assert constraint_set.violations(solution.assignment) == 0

    def test_optimal_cost_matches_hand_computation(self, tiny_infra, tiny_request):
        solution = solve_ilp(tiny_infra, tiny_request, time_limit=30)
        assert solution.optimal
        assert solution.cost == pytest.approx(3.0)  # both on server 0

    def test_infeasible_detected(self, small_infra):
        request = Request(
            demand=np.array([[1e6, 1.0, 1.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        solution = solve_ilp(small_infra, request, time_limit=10)
        assert solution.infeasible and solution.assignment is None

    def test_group_constraints_respected(self, small_infra):
        request = Request(
            demand=np.ones((4, 3)),
            qos_guarantee=np.full(4, 0.9),
            downtime_cost=np.ones(4),
            migration_cost=np.ones(4),
            groups=(
                PlacementGroup(PlacementRule.SAME_SERVER, (0, 1)),
                PlacementGroup(PlacementRule.DIFFERENT_DATACENTERS, (2, 3)),
            ),
        )
        solution = solve_ilp(small_infra, request, time_limit=30)
        assert solution.optimal
        genome = solution.assignment
        assert genome[0] == genome[1]
        dcs = small_infra.server_datacenter[genome]
        assert dcs[2] != dcs[3]

    def test_agrees_with_cp_on_optimal_cost(self, small_infra, small_request):
        from repro.cp import CPSolver

        ilp = solve_ilp(small_infra, small_request, time_limit=30)
        cp = CPSolver(small_infra, small_request).optimize()
        assert ilp.optimal and cp.proved
        assert ilp.cost == pytest.approx(cp.cost)
