"""Unit tests: the ``scenario`` subcommand and ``verify --scenario``."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.verify import FuzzConfig, run_fuzz
from repro.workloads.scenarios import scenario_names


class TestParserGrammar:
    def test_scenario_list_parses(self):
        args = build_parser().parse_args(["scenario", "list"])
        assert (args.command, args.action, args.name) == (
            "scenario",
            "list",
            None,
        )

    def test_scenario_run_parses_with_allocator(self):
        args = build_parser().parse_args(
            ["scenario", "run", "steady_churn", "--seed", "7",
             "--allocator", "round_robin"]
        )
        assert args.action == "run"
        assert args.name == "steady_churn"
        assert args.seed == 7
        assert args.allocator == "round_robin"

    def test_verify_scenario_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["verify", "--fuzz", "1", "--scenario", "steady_churn",
             "--scenario", "diurnal"]
        )
        assert args.scenario == ["steady_churn", "diurnal"]

    def test_verify_scenario_defaults_off(self):
        args = build_parser().parse_args(["verify", "--fuzz", "1"])
        assert args.scenario is None


class TestScenarioCommand:
    def test_list_prints_every_registered_name(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_prints_metrics_and_fingerprints(self, capsys):
        assert main(
            ["scenario", "run", "steady_churn", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "steady_churn" in out
        assert "event fingerprint" in out
        assert "ledger" in out

    def test_run_without_name_errors(self, capsys):
        assert main(["scenario", "run"]) == 2
        assert "needs a scenario name" in capsys.readouterr().err

    def test_run_unknown_name_errors(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_allocator_errors(self, capsys):
        assert main(
            ["scenario", "run", "steady_churn", "--allocator", "nope"]
        ) == 2
        assert "unknown allocator" in capsys.readouterr().err

    def test_run_is_deterministic_per_seed(self, capsys):
        main(["scenario", "run", "diurnal", "--seed", "3"])
        first = capsys.readouterr().out
        main(["scenario", "run", "diurnal", "--seed", "3"])
        assert capsys.readouterr().out == first


class TestVerifyScenarioRouting:
    def test_unknown_scenario_rejected_before_fuzzing(self, capsys):
        assert main(["verify", "--fuzz", "1", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_fuzz_config_drives_dynamic_checks(self):
        report = run_fuzz(
            FuzzConfig(
                scenarios=1,
                seed=3,
                sizes=((4, 8),),
                dynamic_scenarios=("steady_churn",),
            )
        )
        assert report.ok, report.format()
        assert report.dynamic_checks == 3
        assert "dynamic-law checks" in report.format()

    @pytest.mark.slow
    def test_cli_all_expands_to_whole_registry(self, capsys):
        assert main(
            ["verify", "--fuzz", str(len(scenario_names())),
             "--scenario", "all", "--sizes", "4x8"]
        ) == 0
        out = capsys.readouterr().out
        assert "dynamic-law checks" in out
