"""Anytime contract, incumbent pool and portfolio racer.

Covers the PR's acceptance bars: every allocator family honours the
``start()``/``step()``/``finish()`` contract byte-identically to its
blocking ``allocate()``, the shared pool admits only proven placements,
the portfolio race is deterministic per seed, deadline-bounded,
resumable from a composite checkpoint, and leak-free on close.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro import (
    CPAllocator,
    NSGAConfig,
    NSGA3TabuAllocator,
    RoundRobinAllocator,
)
from repro.ea.hypervolume import (
    hypervolume,
    reference_point,
    reference_point_cache_info,
)
from repro.engine.compiled import CompiledProblem
from repro.errors import ValidationError
from repro.model import Request
from repro.model.placement import UNPLACED
from repro.objectives import EnergyCost
from repro.portfolio import IncumbentPool, PortfolioAllocator, parse_members
from repro.runtime.signals import clear_shutdown, request_shutdown
from repro.tabu import TabuSearch
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

_CONFIG = NSGAConfig(
    population_size=12,
    max_evaluations=96,
    reference_point_divisions=4,
    seed=3,
)


def _scenario(seed=3, servers=6, vms=10, tightness=0.8):
    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=tightness
    )
    return ScenarioGenerator(spec, seed=seed).generate()


def _assert_outcomes_equal(a, b):
    assert a.assignment.tobytes() == b.assignment.tobytes()
    assert np.asarray(a.objectives).tobytes() == np.asarray(b.objectives).tobytes()
    assert a.accepted.tobytes() == b.accepted.tobytes()


class TestAnytimeContract:
    def test_nsga_allocate_equals_stepwise(self):
        scenario = _scenario()
        batch = NSGA3TabuAllocator(_CONFIG).allocate(
            scenario.infrastructure, scenario.requests
        )
        run = NSGA3TabuAllocator(_CONFIG).start(
            scenario.infrastructure, scenario.requests
        )
        steps = 0
        while run.step():
            steps += 1
            assert run.best_solution().shape == batch.assignment.shape
        stepwise = run.finish()
        assert steps > 1  # generation-granular, not one blocking call
        _assert_outcomes_equal(batch, stepwise)

    def test_finish_is_idempotent(self):
        scenario = _scenario()
        run = NSGA3TabuAllocator(_CONFIG).start(
            scenario.infrastructure, scenario.requests
        )
        while run.step():
            pass
        first = run.finish()
        second = run.finish()
        _assert_outcomes_equal(first, second)

    def test_cp_allocate_equals_stepwise(self):
        scenario = _scenario()
        allocator = CPAllocator(optimize=False)
        batch = allocator.allocate(scenario.infrastructure, scenario.requests)
        run = CPAllocator(optimize=False).start(
            scenario.infrastructure, scenario.requests
        )
        steps = 0
        while run.step():
            steps += 1
        stepwise = run.finish()
        assert steps == len(scenario.requests) - 1  # one request per unit
        _assert_outcomes_equal(batch, stepwise)

    def test_greedy_single_step(self):
        scenario = _scenario()
        batch = RoundRobinAllocator().allocate(
            scenario.infrastructure, scenario.requests
        )
        run = RoundRobinAllocator().start(
            scenario.infrastructure, scenario.requests
        )
        assert run.step() is False  # whole solve is one work unit
        _assert_outcomes_equal(batch, run.finish())

    def test_best_front_defaults_to_one_point(self):
        scenario = _scenario()
        run = RoundRobinAllocator().start(
            scenario.infrastructure, scenario.requests
        )
        run.step()
        front = run.best_front()
        assert front.ndim == 2 and front.shape[0] == 1

    def test_tabu_run_equals_blocking_run(self):
        scenario = _scenario()
        merged, _ = Request.concatenate(scenario.requests)
        compiled = CompiledProblem.compile(scenario.infrastructure, merged)
        initial = np.arange(merged.n, dtype=np.int64) % scenario.infrastructure.m

        def search():
            evaluator = compiled.evaluator(include_assignment_constraint=True)
            return TabuSearch(
                evaluator, max_iterations=60, seed=9, compiled=compiled
            )

        blocking = search().run(initial)
        run = search().start(initial)
        while run.step(7):  # odd slice size: boundaries must not matter
            pass
        stepwise = run.result()
        assert blocking.assignment.tobytes() == stepwise.assignment.tobytes()
        assert (
            np.asarray(blocking.objectives).tobytes()
            == np.asarray(stepwise.objectives).tobytes()
        )
        assert blocking.iterations == stepwise.iterations
        assert blocking.evaluations == stepwise.evaluations


class TestIncumbentPool:
    def test_rejects_unplaced_and_violating(self):
        pool = IncumbentPool()
        genomes = np.array([[0, UNPLACED], [1, 1], [0, 1]])
        objectives = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        violations = np.array([0, 2, 0])
        entered = pool.offer(genomes, objectives, violations=violations)
        assert entered == 1  # only the placed, violation-free row
        assert len(pool) == 1
        assert pool.front()[0].tolist() == [[0, 1]]

    def test_dominated_offers_refused(self):
        pool = IncumbentPool()
        assert pool.offer(np.array([0, 0]), np.array([1.0, 1.0])) == 1
        assert pool.offer(np.array([1, 1]), np.array([2.0, 2.0])) == 0
        assert pool.offer(np.array([2, 2]), np.array([0.5, 2.0])) == 1
        assert len(pool) == 2
        assert pool.offers == 3 and pool.accepted == 2

    def test_state_dict_round_trip(self):
        pool = IncumbentPool(capacity=8)
        pool.offer(np.array([[0, 1], [2, 3]]), np.array([[1.0, 2.0], [2.0, 1.0]]))
        clone = IncumbentPool()
        clone.load_state_dict(pool.state_dict())
        assert clone.front()[0].tolist() == pool.front()[0].tolist()
        assert clone.front()[1].tolist() == pool.front()[1].tolist()
        assert clone.offers == pool.offers and clone.accepted == pool.accepted


class TestReferencePointCache:
    def test_matches_uncached_formula(self):
        objectives = np.array([[1.0, 5.0], [3.0, 2.0]])
        np.testing.assert_array_equal(
            reference_point(objectives, margin=2.0),
            objectives.max(axis=0) + 2.0,
        )

    def test_repeat_lookup_hits_cache(self):
        objectives = np.random.default_rng(4).random((16, 3))
        first = reference_point(objectives)
        hits_before = reference_point_cache_info().hits
        second = reference_point(objectives)
        assert second is first  # memoized object, not a recompute
        assert reference_point_cache_info().hits == hits_before + 1

    def test_cached_array_is_read_only(self):
        reference = reference_point(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            reference[0] = 0.0

    def test_empty_front_rejected(self):
        with pytest.raises(ValidationError):
            reference_point(np.empty((0, 3)))


class TestPortfolioAllocator:
    def test_member_spec_validation(self):
        assert parse_members("nsga3_tabu+cp") == ("nsga3_tabu", "cp")
        with pytest.raises(ValidationError):
            parse_members("nsga3_tabu+warp_drive")
        with pytest.raises(ValidationError):
            PortfolioAllocator(deadline_ms=-5)

    def test_deterministic_and_stepwise_parity(self):
        scenario = _scenario()

        def batch():
            allocator = PortfolioAllocator(config=_CONFIG)
            try:
                return allocator.allocate(
                    scenario.infrastructure, scenario.requests
                )
            finally:
                allocator.close()

        first = batch()
        second = batch()
        _assert_outcomes_equal(first, second)

        allocator = PortfolioAllocator(config=_CONFIG)
        try:
            run = allocator.start(scenario.infrastructure, scenario.requests)
            while run.step():
                pass
            stepwise = run.finish()
            assert run.epoch > 1
            assert stepwise.extra["pool_size"] >= 1
        finally:
            allocator.close()
        _assert_outcomes_equal(first, stepwise)

    def test_pooled_front_hypervolume_monotone(self):
        scenario = _scenario(tightness=0.7)
        allocator = PortfolioAllocator(config=_CONFIG)
        fronts = []
        try:
            run = allocator.start(scenario.infrastructure, scenario.requests)
            while run.step():
                if len(run.pool):
                    fronts.append(np.array(run.best_front(), copy=True))
            run.finish()
        finally:
            allocator.close()
        assert fronts, "pool never filled"
        reference = reference_point(np.vstack(fronts))
        series = [hypervolume(front, reference) for front in fronts]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_deadline_cuts_the_race_short(self):
        scenario = _scenario(servers=8, vms=16)
        config = NSGAConfig(
            population_size=16,
            max_evaluations=40_000,
            reference_point_divisions=4,
            seed=3,
        )
        allocator = PortfolioAllocator(config=config, deadline_ms=300.0)
        started = time.perf_counter()
        try:
            outcome = allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
        finally:
            allocator.close()
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # nowhere near the 40k-evaluation budget
        assert outcome.assignment.shape == (sum(r.n for r in scenario.requests),)

    def test_energy_term_folds_into_provider_objective(self):
        scenario = _scenario()
        merged, _ = Request.concatenate(scenario.requests)
        compiled = CompiledProblem.compile(scenario.infrastructure, merged)
        assignment = np.arange(merged.n, dtype=np.int64) % scenario.infrastructure.m
        plain = compiled.evaluator().evaluate(assignment).as_array()
        weighted = (
            compiled.evaluator(energy_weight=0.5).evaluate(assignment).as_array()
        )
        energy = EnergyCost(scenario.infrastructure, merged.demand).value(
            assignment
        )
        assert energy > 0.0
        assert weighted[0] == pytest.approx(plain[0] + 0.5 * energy)
        np.testing.assert_array_equal(weighted[1:], plain[1:])

    def test_close_releases_shared_engine(self):
        scenario = _scenario()
        config = NSGAConfig(
            population_size=12,
            max_evaluations=48,
            reference_point_divisions=4,
            seed=3,
            n_workers=2,
        )
        allocator = PortfolioAllocator(config=config, members="nsga3_tabu+cp")
        try:
            allocator.allocate(scenario.infrastructure, scenario.requests)
            engine = allocator.execution_engine
            assert engine is not None
            # Every EA member rides the one portfolio-level pool.
            ea_members = [
                member
                for member in allocator._member_allocators
                if getattr(member, "execution_engine", None) is not None
            ]
            assert ea_members
            assert all(m.execution_engine is engine for m in ea_members)
        finally:
            allocator.close()
        assert engine._closed
        # Leak check: no worker processes survive the close.
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_scheduler_close_propagates_to_allocator(self):
        from repro.scheduler.window import TimeWindowScheduler

        scenario = _scenario()
        config = NSGAConfig(
            population_size=12,
            max_evaluations=48,
            reference_point_divisions=4,
            seed=3,
            n_workers=1,
        )
        allocator = PortfolioAllocator(config=config, members="nsga3_tabu")
        scheduler = TimeWindowScheduler(
            infrastructure=scenario.infrastructure, allocator=allocator
        )
        for index, request in enumerate(scenario.requests):
            scheduler.submit(f"vm-{index}", request)
        scheduler.run_window()
        engine = allocator.execution_engine
        assert engine is not None
        scheduler.close()
        assert engine._closed  # the PR 6 leak: scheduler never closed it


class TestPortfolioCheckpoint:
    def test_shutdown_snapshot_resumes_byte_identically(self, tmp_path):
        scenario = _scenario(servers=6, vms=12, tightness=0.75)

        def build(directory):
            import dataclasses

            config = dataclasses.replace(
                _CONFIG, checkpoint_dir=directory, checkpoint_every=2
            )
            return PortfolioAllocator(config=config)

        # Uninterrupted baseline (no checkpointing).
        allocator = PortfolioAllocator(config=_CONFIG)
        try:
            baseline = allocator.allocate(
                scenario.infrastructure, scenario.requests
            )
        finally:
            allocator.close()

        # "SIGINT" mid-race: the shutdown flag is what the signal
        # bridge raises; the race must flush a composite snapshot at
        # the epoch boundary it stands on.
        directory = str(tmp_path / "ckpt")
        allocator = build(directory)
        try:
            run = allocator.start(scenario.infrastructure, scenario.requests)
            for _ in range(3):
                assert run.step()
            request_shutdown()
            assert run.step() is False
            assert run.interrupted
            interrupted_epoch = run.epoch
            outcome = run.finish()
            assert outcome.extra["interrupted"]
        finally:
            clear_shutdown()
            allocator.close()

        # Resume: a fresh race over the same problem + config picks the
        # snapshot up and finishes exactly as the uninterrupted run.
        allocator = build(directory)
        try:
            run = allocator.start(scenario.infrastructure, scenario.requests)
            assert run.epoch == interrupted_epoch
            while run.step():
                pass
            resumed = run.finish()
        finally:
            allocator.close()
        _assert_outcomes_equal(baseline, resumed)

    def test_checkpoint_ignored_across_configs(self, tmp_path):
        """A snapshot from a different member spec must not be loaded."""
        import dataclasses

        scenario = _scenario()
        config = dataclasses.replace(_CONFIG, checkpoint_dir=str(tmp_path))
        allocator = PortfolioAllocator(config=config, members="nsga3_tabu+cp")
        try:
            run = allocator.start(scenario.infrastructure, scenario.requests)
            assert run.step()
            request_shutdown()
            run.step()
        finally:
            clear_shutdown()
            allocator.close()

        other = PortfolioAllocator(config=config, members="nsga3_tabu+tabu")
        try:
            run = other.start(scenario.infrastructure, scenario.requests)
            assert run.epoch == 0  # different config_key, fresh race
        finally:
            other.close()


class TestReoptimizerWiring:
    def test_reoptimizer_defaults_to_portfolio(self):
        from repro.service.reoptimizer import DEFAULT_MEMBERS, Reoptimizer
        from repro.service.state import ServiceState

        scenario = _scenario()
        state = ServiceState(scenario.infrastructure, seed=3)
        reopt = Reoptimizer(state)
        assert reopt.members == DEFAULT_MEMBERS
        assert reopt.deadline_ms is None
