"""Regression tests: the static generator's per-axis RNG streams.

Every stochastic axis of :class:`ScenarioGenerator` (estate, request
sizes, demand, QoS/cost attributes, placement groups) draws from its
own ``derive_sequence`` child, so toggling one axis's parameters must
leave every other axis's draws byte-identical.  These tests pin that
stability — the property the dynamic scenario compiler builds on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.workloads.generator import ScenarioGenerator, ScenarioSpec

BASE = ScenarioSpec(
    servers=10,
    datacenters=2,
    vms=30,
    tightness=0.6,
    heterogeneity=0.4,
    affinity_probability=0.5,
)


def _scenario(spec: ScenarioSpec, seed: int = 42):
    return ScenarioGenerator(spec, seed=seed).generate()


def test_same_seed_is_byte_identical():
    one = _scenario(BASE)
    two = _scenario(BASE)
    np.testing.assert_array_equal(
        one.infrastructure.capacity, two.infrastructure.capacity
    )
    np.testing.assert_array_equal(
        one.infrastructure.usage_cost, two.infrastructure.usage_cost
    )
    assert len(one.requests) == len(two.requests)
    for a, b in zip(one.requests, two.requests):
        np.testing.assert_array_equal(a.demand, b.demand)
        np.testing.assert_array_equal(a.qos_guarantee, b.qos_guarantee)
        assert a.groups == b.groups


def test_affinity_knob_leaves_estate_and_demand_untouched():
    plain = _scenario(dataclasses.replace(BASE, affinity_probability=0.0))
    ruled = _scenario(dataclasses.replace(BASE, affinity_probability=1.0))
    # Same estate...
    np.testing.assert_array_equal(
        plain.infrastructure.capacity, ruled.infrastructure.capacity
    )
    np.testing.assert_array_equal(
        plain.infrastructure.operating_cost, ruled.infrastructure.operating_cost
    )
    # ...same request partition and bodies...
    assert [r.n for r in plain.requests] == [r.n for r in ruled.requests]
    for a, b in zip(plain.requests, ruled.requests):
        np.testing.assert_array_equal(a.demand, b.demand)
        np.testing.assert_array_equal(a.downtime_cost, b.downtime_cost)
    # ...only the placement rules differ.
    assert all(not r.groups for r in plain.requests)
    assert any(r.groups for r in ruled.requests)


def test_heterogeneity_knob_leaves_request_partition_untouched():
    flat = _scenario(dataclasses.replace(BASE, heterogeneity=0.0))
    mixed = _scenario(dataclasses.replace(BASE, heterogeneity=0.8))
    # The request-size stream is independent of the estate stream, so
    # the window partitions identically even though demand re-scales to
    # the changed estate capacity.
    assert [r.n for r in flat.requests] == [r.n for r in mixed.requests]
    assert not np.array_equal(
        flat.infrastructure.capacity, mixed.infrastructure.capacity
    )


def test_successive_instances_are_independent():
    generator = ScenarioGenerator(BASE, seed=42)
    first = generator.generate()
    second = generator.generate()
    assert not np.array_equal(
        first.infrastructure.capacity, second.infrastructure.capacity
    )
    # A fresh generator replays the same per-index instances.
    replay = ScenarioGenerator(BASE, seed=42)
    np.testing.assert_array_equal(
        replay.generate().infrastructure.capacity,
        first.infrastructure.capacity,
    )
    np.testing.assert_array_equal(
        replay.generate().infrastructure.capacity,
        second.infrastructure.capacity,
    )
