"""Unit tests for the checkpoint/resume runtime subsystem."""

import json
import os
import signal
import threading

import numpy as np
import pytest

from repro.ea.config import NSGAConfig
from repro.ea.constraint_handling import NoHandling, RepairHandling
from repro.ea.nsga3 import NSGA3
from repro.engine.compiled import CompiledProblem
from repro.errors import CheckpointError, ValidationError
from repro.model.request import Request
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    RunCheckpoint,
    atomic_write_json,
    read_checked_json,
    trajectory_key,
)
from repro.runtime.signals import (
    GracefulShutdown,
    clear_shutdown,
    request_shutdown,
    shutdown_requested,
)
from repro.tabu.repair import TabuRepair
from repro.utils.timers import Stopwatch
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec


def _checkpoint(generation=2, fingerprint="f" * 32, config_key="c" * 32):
    rng = np.random.default_rng(0)
    return RunCheckpoint(
        algorithm="nsga3",
        fingerprint=fingerprint,
        config_key=config_key,
        generation=generation,
        evaluations=generation * 10,
        elapsed=1.25,
        genomes=np.arange(12, dtype=np.int64).reshape(3, 4),
        objectives=np.linspace(0.0, 1.0, 9).reshape(3, 3),
        violations=np.array([0, 1, 2], dtype=np.int64),
        rng_state=rng.bit_generator.state,
        stalled=1,
        best_violations=0,
        best_aggregate=3.5,
        repair_state={"batch_counter": 7},
        history=(),
        window_index=None,
    )


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.json"
        payload = {"x": 1.5, "y": [1, 2, 3]}
        atomic_write_json(path, "test_state", payload)
        assert read_checked_json(path, "test_state") == payload

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            read_checked_json(tmp_path / "absent.json", "test_state")

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, "other_kind", {"x": 1})
        with pytest.raises(CheckpointError, match="other_kind"):
            read_checked_json(path, "test_state")

    def test_version_skew_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, "test_state", {"x": 1})
        envelope = json.loads(path.read_text())
        envelope["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            read_checked_json(path, "test_state")

    def test_checksum_drift_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, "test_state", {"x": 1})
        envelope = json.loads(path.read_text())
        envelope["data"]["x"] = 2  # corrupt without updating checksum
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checked_json(path, "test_state")

    def test_torn_write_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, "test_state", {"x": 1})
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checked_json(path, "test_state")

    def test_floats_survive_exactly(self, tmp_path):
        path = tmp_path / "state.json"
        values = [0.1, 1 / 3, np.nextafter(2.0, 3.0), 1e-308]
        atomic_write_json(path, "test_state", {"v": values})
        out = read_checked_json(path, "test_state")["v"]
        assert all(a == b for a, b in zip(values, out))


class TestTrajectoryKey:
    def test_stopping_criteria_excluded(self):
        base = NSGAConfig(population_size=8, max_evaluations=100, seed=3)
        longer = base.with_(max_evaluations=10_000)
        timed = base.with_(time_limit=5.0)
        workers = base.with_(n_workers=4)
        key = trajectory_key(base, "nsga3")
        assert trajectory_key(longer, "nsga3") == key
        assert trajectory_key(timed, "nsga3") == key
        assert trajectory_key(workers, "nsga3") == key

    def test_trajectory_fields_included(self):
        base = NSGAConfig(population_size=8, max_evaluations=100, seed=3)
        key = trajectory_key(base, "nsga3")
        assert trajectory_key(base.with_(seed=4), "nsga3") != key
        assert trajectory_key(base.with_(population_size=10), "nsga3") != key
        assert trajectory_key(base.with_(sbx_rate=0.5), "nsga3") != key
        assert trajectory_key(base, "nsga2") != key

    def test_handler_separates_trajectories(self):
        spec = ScenarioSpec(servers=4, datacenters=1, vms=6, tightness=0.5)
        scenario = ScenarioGenerator(spec, seed=0).generate()
        merged, _ = Request.concatenate(scenario.requests)
        repair = TabuRepair(scenario.infrastructure, merged)
        assert NoHandling().trajectory_tag() != RepairHandling(repair).trajectory_tag()


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = _checkpoint()
        path = manager.save(ckpt)
        loaded = manager.load(path)
        assert loaded.generation == ckpt.generation
        assert loaded.genomes.tobytes() == ckpt.genomes.tobytes()
        assert loaded.objectives.tobytes() == ckpt.objectives.tobytes()
        assert loaded.rng_state == ckpt.rng_state
        assert loaded.repair_state == ckpt.repair_state

    def test_latest_prefers_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for generation in (2, 4, 6):
            manager.save(_checkpoint(generation=generation))
        latest = manager.latest("f" * 32, "c" * 32)
        assert latest is not None and latest.generation == 6

    def test_latest_skips_torn_write(self, tmp_path):
        """A kill mid-write of generation 6 must fall back to 4 intact."""
        manager = CheckpointManager(tmp_path)
        manager.save(_checkpoint(generation=2))
        manager.save(_checkpoint(generation=4))
        torn = manager.path_for(_checkpoint(generation=6))
        blob = manager.path_for(_checkpoint(generation=4)).read_text()
        torn.write_text(blob[: len(blob) // 3])  # simulated torn write
        latest = manager.latest("f" * 32, "c" * 32)
        assert latest is not None and latest.generation == 4

    def test_interrupted_atomic_write_leaves_previous_valid(
        self, tmp_path, monkeypatch
    ):
        """Dying inside atomic_write_json never clobbers the old file."""
        manager = CheckpointManager(tmp_path)
        manager.save(_checkpoint(generation=2))
        before = manager.path_for(_checkpoint(generation=2)).read_bytes()

        def exploding_replace(src, dst):
            raise OSError("killed mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            manager.save(_checkpoint(generation=2, config_key="c" * 32))
        monkeypatch.undo()
        assert manager.path_for(_checkpoint(generation=2)).read_bytes() == before
        latest = manager.latest("f" * 32, "c" * 32)
        assert latest is not None and latest.generation == 2

    def test_retention_prunes_old_boundaries(self, tmp_path):
        manager = CheckpointManager(tmp_path, retain=2)
        for generation in (2, 4, 6, 8):
            manager.save(_checkpoint(generation=generation))
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert len(names) == 2
        assert names[0].endswith("g000006.json")
        assert names[1].endswith("g000008.json")

    def test_retain_validated(self, tmp_path):
        with pytest.raises(ValidationError):
            CheckpointManager(tmp_path, retain=0)

    def test_named_state_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_state("scheduler", "scheduler_checkpoint", {"clock": 2.0})
        assert manager.load_state("scheduler", "scheduler_checkpoint") == {
            "clock": 2.0
        }
        with pytest.raises(CheckpointError):
            manager.load_state("scheduler", "campaign_manifest")


class TestResumeRejection:
    @staticmethod
    def _scenario(seed):
        spec = ScenarioSpec(servers=5, datacenters=1, vms=8, tightness=0.6)
        return ScenarioGenerator(spec, seed=seed).generate()

    def _run(self, scenario, manager, budget=60):
        merged, _ = Request.concatenate(scenario.requests)
        compiled = CompiledProblem(scenario.infrastructure, merged)
        config = NSGAConfig(
            population_size=10,
            max_evaluations=budget,
            reference_point_divisions=4,
            checkpoint_every=1,
            seed=0,
        )
        engine = NSGA3(config=config, handler=NoHandling())
        return engine.run(
            compiled.evaluator(),
            checkpoint_manager=manager,
            fingerprint=compiled.fingerprint,
        )

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        """Resuming against a mutated scenario must fail loudly."""
        manager = CheckpointManager(tmp_path)
        self._run(self._scenario(seed=0), manager)
        stale = next(tmp_path.glob("ckpt-*.json"))
        checkpoint = manager.load(stale)

        mutated = self._scenario(seed=1)
        merged, _ = Request.concatenate(mutated.requests)
        compiled = CompiledProblem(mutated.infrastructure, merged)
        config = NSGAConfig(
            population_size=10,
            max_evaluations=60,
            reference_point_divisions=4,
            seed=0,
        )
        engine = NSGA3(config=config, handler=NoHandling())
        with pytest.raises(CheckpointError, match="scenario changed"):
            engine.run(
                compiled.evaluator(),
                resume_from=checkpoint,
                fingerprint=compiled.fingerprint,
            )

    def test_mutated_scenario_auto_resume_starts_fresh(self, tmp_path):
        """Auto-resume keys on the fingerprint: a different scenario in
        the same directory silently starts a fresh run."""
        manager = CheckpointManager(tmp_path)
        self._run(self._scenario(seed=0), manager)
        result = self._run(self._scenario(seed=1), manager)
        assert result.resumed_from is None

    def test_config_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        scenario = self._scenario(seed=0)
        self._run(scenario, manager)
        checkpoint = manager.load(next(iter(sorted(tmp_path.glob("ckpt-*.json")))))

        merged, _ = Request.concatenate(scenario.requests)
        compiled = CompiledProblem(scenario.infrastructure, merged)
        config = NSGAConfig(
            population_size=10,
            max_evaluations=60,
            reference_point_divisions=4,
            seed=99,  # different trajectory
        )
        engine = NSGA3(config=config, handler=NoHandling())
        with pytest.raises(CheckpointError, match="configuration"):
            engine.run(
                compiled.evaluator(),
                resume_from=checkpoint,
                fingerprint=compiled.fingerprint,
            )


class TestStopwatchPrecharge:
    def test_elapsed_precharge(self):
        watch = Stopwatch(elapsed=2.5)
        assert watch.elapsed == 2.5
        watch.start()
        assert watch.elapsed >= 2.5

    def test_negative_precharge_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch(elapsed=-0.1)


class TestSignals:
    def setup_method(self):
        clear_shutdown()

    def teardown_method(self):
        clear_shutdown()

    def test_request_and_clear(self):
        assert not shutdown_requested()
        request_shutdown()
        assert shutdown_requested()
        clear_shutdown()
        assert not shutdown_requested()

    def test_context_handles_sigterm(self):
        with GracefulShutdown():
            os.kill(os.getpid(), signal.SIGTERM)
            assert shutdown_requested()
        # Flag cleared and previous handler restored on exit.
        assert not shutdown_requested()

    def test_second_sigint_raises(self):
        with GracefulShutdown() as guard:
            guard._handle(signal.SIGINT, None)
            assert shutdown_requested()
            with pytest.raises(KeyboardInterrupt):
                guard._handle(signal.SIGINT, None)

    def test_noop_off_main_thread(self):
        seen = {}

        def body():
            with GracefulShutdown() as guard:
                seen["installed"] = guard._installed

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert seen["installed"] is False
