"""Unit tests for the scheduler: events, migration plans, time windows."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator
from repro.errors import SchedulerError
from repro.model import Request
from repro.model.placement import UNPLACED
from repro.scheduler import (
    ArrivalEvent,
    DepartureEvent,
    EventQueue,
    TimeWindowScheduler,
    plan_migration,
)


def _request(n=2, scale=1.0):
    return Request(
        demand=np.full((n, 3), scale),
        qos_guarantee=np.full(n, 0.9),
        downtime_cost=np.ones(n),
        migration_cost=np.arange(1, n + 1, dtype=np.float64),
    )


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(DepartureEvent(time=2.0, key="b"))
        queue.push(ArrivalEvent(time=1.0, key="a", request=_request()))
        events = queue.pop_until(5.0)
        assert [e.key for e in events] == ["a", "b"]

    def test_fifo_within_equal_times(self):
        queue = EventQueue()
        for key in "abc":
            queue.push(DepartureEvent(time=1.0, key=key))
        assert [e.key for e in queue.pop_until(1.0)] == ["a", "b", "c"]

    def test_pop_until_respects_cutoff(self):
        queue = EventQueue()
        queue.push(DepartureEvent(time=1.0, key="a"))
        queue.push(DepartureEvent(time=3.0, key="b"))
        assert [e.key for e in queue.pop_until(2.0)] == ["a"]
        assert len(queue) == 1
        assert queue.peek_time() == 3.0

    def test_negative_time_rejected(self):
        with pytest.raises(SchedulerError):
            DepartureEvent(time=-1.0, key="x")


class TestMigrationPlan:
    def test_classifies_moves_boots_shutdowns(self):
        request = _request(n=4)
        previous = np.array([0, 1, UNPLACED, 2])
        new = np.array([0, 3, 5, UNPLACED])
        plan = plan_migration(previous, new, request)
        assert [m.resource for m in plan.moves] == [1]
        assert plan.boots == (2,)
        assert plan.shutdowns == (3,)

    def test_cost_is_eq26(self):
        request = _request(n=3)  # M = [1, 2, 3]
        previous = np.array([0, 0, 0])
        new = np.array([1, 0, 2])
        plan = plan_migration(previous, new, request)
        assert plan.total_cost == pytest.approx(1.0 + 3.0)
        assert plan.size == 2

    def test_identical_assignments_empty_plan(self):
        request = _request(n=2)
        plan = plan_migration(np.array([0, 1]), np.array([0, 1]), request)
        assert len(plan) == 0 and plan.total_cost == 0.0


class TestTimeWindowScheduler:
    def test_batches_by_window(self, small_infra):
        scheduler = TimeWindowScheduler(
            small_infra, FirstFitAllocator(), window_length=1.0
        )
        scheduler.submit("a", _request(), at=0.2)
        scheduler.submit("b", _request(), at=0.8)
        scheduler.submit("c", _request(), at=1.5)
        first = scheduler.run_window()
        assert set(first.arrivals) == {"a", "b"}
        second = scheduler.run_window()
        assert second.arrivals == ("c",)

    def test_accepted_requests_commit_capacity(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request())
        report = scheduler.run_window()
        assert report.accepted == ("a",)
        assert scheduler.state.hosted_resource_count == 2
        scheduler.state.verify_consistency()

    def test_departure_releases_capacity(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request(), at=0.0)
        scheduler.schedule_departure("a", at=1.5)
        scheduler.run_window()  # allocates a
        report = scheduler.run_window()  # processes departure
        assert report.departures == ("a",)
        assert scheduler.state.hosted_resource_count == 0

    def test_rejected_request_reported(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        impossible = Request(
            demand=np.array([[1e6, 1.0, 1.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        scheduler.submit("bad", impossible)
        report = scheduler.run_window()
        assert report.rejected == ("bad",)
        assert report.rejection_rate == 1.0

    def test_duplicate_key_rejected(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request())
        with pytest.raises(SchedulerError):
            scheduler.submit("a", _request())

    def test_run_drains_queue(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        for i in range(5):
            scheduler.submit(f"r{i}", _request(), at=float(i))
        reports = scheduler.run()
        assert scheduler.pending_events == 0
        assert sum(len(r.arrivals) for r in reports) == 5

    def test_capacity_carried_across_windows(self, small_infra):
        # Fill the estate window by window until something is rejected.
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        big = Request(
            demand=np.tile(small_infra.effective_capacity.min(axis=0) * 0.9, (8, 1)),
            qos_guarantee=np.full(8, 0.9),
            downtime_cost=np.ones(8),
            migration_cost=np.ones(8),
        )
        for i in range(4):
            scheduler.submit(f"big{i}", big, at=float(i))
        reports = scheduler.run()
        rejected = [k for r in reports for k in r.rejected]
        assert rejected  # the estate cannot hold four of these

    def test_window_length_validated(self, small_infra):
        with pytest.raises(SchedulerError):
            TimeWindowScheduler(small_infra, FirstFitAllocator(), window_length=0)


class TestReoptimize:
    def test_empty_platform_returns_none(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        assert scheduler.reoptimize() is None

    def test_reoptimize_reports_plan(self, small_infra):
        scheduler = TimeWindowScheduler(small_infra, FirstFitAllocator())
        scheduler.submit("a", _request())
        scheduler.submit("b", _request())
        scheduler.run_window()
        result = scheduler.reoptimize()
        assert result is not None
        outcome, plan = result
        assert outcome.violations == 0
        assert plan.total_cost >= 0.0
        scheduler.state.verify_consistency()
