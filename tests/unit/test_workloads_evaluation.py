"""Unit tests for scenario generation and the evaluation harness."""

import numpy as np
import pytest

from repro.baselines import FirstFitAllocator, RoundRobinAllocator
from repro.errors import ValidationError
from repro.evaluation import (
    ExperimentRunner,
    RunRecord,
    aggregate_records,
    capability_matrix,
    format_series_table,
    format_table,
)
from repro.types import PlacementRule
from repro.workloads import (
    FIG7_SIZES,
    FIG8_SIZES,
    ScenarioGenerator,
    ScenarioSpec,
    scenario_spec_for_size,
    sweep_specs,
)


class TestScenarioGenerator:
    def test_sizes_match_spec(self):
        spec = ScenarioSpec(servers=30, datacenters=3, vms=50)
        scenario = ScenarioGenerator(spec, seed=0).generate()
        assert scenario.infrastructure.m == 30
        assert scenario.infrastructure.g == 3
        assert scenario.n_vms == 50

    def test_deterministic_given_seed(self):
        spec = ScenarioSpec(servers=20, vms=30)
        a = ScenarioGenerator(spec, seed=5).generate()
        b = ScenarioGenerator(spec, seed=5).generate()
        assert np.allclose(a.infrastructure.capacity, b.infrastructure.capacity)
        assert a.n_requests == b.n_requests
        for ra, rb in zip(a.requests, b.requests):
            assert np.allclose(ra.demand, rb.demand)
            assert ra.groups == rb.groups

    def test_tightness_approached(self):
        spec = ScenarioSpec(servers=40, vms=80, tightness=0.6)
        scenario = ScenarioGenerator(spec, seed=1).generate()
        total = np.concatenate([r.demand for r in scenario.requests]).sum(axis=0)
        capacity = scenario.infrastructure.effective_capacity.sum(axis=0)
        ratio = total / capacity
        assert np.all(ratio > 0.4) and np.all(ratio < 0.75)

    def test_vm_size_capped(self):
        spec = ScenarioSpec(servers=40, vms=80, tightness=0.9, max_vm_fraction=0.3)
        scenario = ScenarioGenerator(spec, seed=2).generate()
        ceiling = 0.3 * np.median(
            scenario.infrastructure.effective_capacity, axis=0
        )
        for request in scenario.requests:
            assert np.all(request.demand <= ceiling + 1e-9)

    def test_group_members_within_requests(self):
        spec = ScenarioSpec(servers=20, vms=60, affinity_probability=1.0)
        scenario = ScenarioGenerator(spec, seed=3).generate()
        for request in scenario.requests:
            for group in request.groups:
                assert max(group.members) < request.n

    def test_anti_affinity_pigeonhole_respected(self):
        spec = ScenarioSpec(
            servers=12, datacenters=2, vms=60, affinity_probability=1.0
        )
        scenario = ScenarioGenerator(spec, seed=4).generate()
        for request in scenario.requests:
            for group in request.groups:
                if group.rule is PlacementRule.DIFFERENT_DATACENTERS:
                    assert group.size <= 2

    def test_zero_heterogeneity_is_homogeneous_scale(self):
        spec = ScenarioSpec(servers=10, vms=20, heterogeneity=0.0)
        scenario = ScenarioGenerator(spec, seed=5).generate()
        capacity = scenario.infrastructure.capacity
        assert np.allclose(capacity, capacity[0], rtol=1e-9)

    def test_generate_many_distinct(self):
        spec = ScenarioSpec(servers=10, vms=20)
        scenarios = ScenarioGenerator(spec, seed=6).generate_many(3)
        assert len(scenarios) == 3
        assert not np.allclose(
            scenarios[0].infrastructure.capacity,
            scenarios[1].infrastructure.capacity,
        )

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            ScenarioSpec(servers=0)
        with pytest.raises(ValidationError):
            ScenarioSpec(servers=4, datacenters=5)
        with pytest.raises(ValidationError):
            ScenarioSpec(tightness=0.0)
        with pytest.raises(ValidationError):
            ScenarioSpec(max_vm_fraction=0.0)


class TestProfiles:
    def test_paper_max_size_present(self):
        assert (800, 1600) in FIG8_SIZES
        assert all(s <= 100 for s, _ in FIG7_SIZES)

    def test_spec_for_size_defaults(self):
        spec = scenario_spec_for_size(40, 80)
        assert spec.servers == 40 and spec.vms == 80
        assert spec.datacenters == 2
        large = scenario_spec_for_size(400, 800)
        assert large.datacenters == 4

    def test_sweep_specs(self):
        specs = sweep_specs(FIG7_SIZES, tightness=0.5)
        assert len(specs) == len(FIG7_SIZES)
        assert all(s.tightness == 0.5 for s in specs)


class TestMetrics:
    def _record(self, **kw):
        base = dict(
            algorithm="x",
            servers=10,
            vms=20,
            requests=5,
            elapsed=1.0,
            rejection_rate=0.1,
            violations=0,
            provider_cost=100.0,
            downtime_cost=0.0,
            migration_cost=0.0,
        )
        base.update(kw)
        return RunRecord(**base)

    def test_aggregate_means(self):
        records = [self._record(elapsed=1.0), self._record(elapsed=3.0)]
        agg = aggregate_records(records)
        assert agg.mean_elapsed == pytest.approx(2.0)
        assert agg.runs == 2

    def test_heterogeneous_group_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_records(
                [self._record(), self._record(algorithm="y")]
            )

    def test_metric_lookup(self):
        agg = aggregate_records([self._record()])
        assert agg.metric("execution_time") == pytest.approx(1.0)
        assert agg.metric("provider_cost") == pytest.approx(100.0)
        with pytest.raises(ValidationError):
            agg.metric("bogus")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_records([])


class TestRunner:
    def test_sweep_produces_grid(self):
        runner = ExperimentRunner(
            {
                "ff": FirstFitAllocator,
                "rr": RoundRobinAllocator,
            },
            runs=2,
            seed=0,
        )
        specs = [
            ScenarioSpec(servers=10, vms=20, tightness=0.5),
            ScenarioSpec(servers=20, vms=40, tightness=0.5),
        ]
        result = runner.run_sweep(specs)
        assert len(result.records) == 2 * 2 * 2
        assert result.algorithms() == ["ff", "rr"]
        assert result.sizes() == [(10, 20), (20, 40)]
        agg = result.aggregate("ff", (10, 20))
        assert agg.runs == 2

    def test_series_shape(self):
        runner = ExperimentRunner({"ff": FirstFitAllocator}, runs=1, seed=1)
        result = runner.run_sweep([ScenarioSpec(servers=10, vms=20)])
        series = result.series("rejection_rate")
        assert list(series) == ["ff"]
        assert len(series["ff"]) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExperimentRunner({}, runs=1)
        with pytest.raises(ValidationError):
            ExperimentRunner({"ff": FirstFitAllocator}, runs=0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_format_table_bools_and_floats(self):
        text = format_table(["x"], [[True], [False], [0.1234], [12345.0]])
        assert "yes" in text and "no" in text
        assert "0.1234" in text and "12,345" in text

    def test_row_width_checked(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_series_table(self):
        runner = ExperimentRunner({"ff": FirstFitAllocator}, runs=1, seed=2)
        result = runner.run_sweep([ScenarioSpec(servers=10, vms=20)])
        text = format_series_table(result, "rejection_rate", title="Fig")
        assert "10 x 20" in text and "ff" in text


class TestCapabilityMatrix:
    def test_greedy_row(self):
        rows = capability_matrix({"ff": FirstFitAllocator}, seed=0, runs=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.algorithm == "ff"
        assert row.compliance_with_constraints  # greedy never violates
        assert set(row.details) >= {"mean_violations", "time_ratio"}
