"""Unit tests for JSON serialization, the CLI and the U-NSGA-III variant."""

import numpy as np
import pytest

from repro import NSGAConfig, ScenarioGenerator, ScenarioSpec
from repro.baselines import FirstFitAllocator
from repro.cli import build_parser, main
from repro.ea import UNSGA3, NSGA3, RepairHandling
from repro.errors import ValidationError
from repro.evaluation.metrics import RunRecord
from repro.objectives import PopulationEvaluator
from repro.serialization import (
    infrastructure_from_dict,
    infrastructure_to_dict,
    load_json,
    outcome_to_dict,
    request_from_dict,
    request_to_dict,
    run_record_from_dict,
    run_record_to_dict,
    save_json,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.tabu import TabuRepair


class TestSerialization:
    def test_infrastructure_roundtrip(self, small_infra):
        data = infrastructure_to_dict(small_infra)
        back = infrastructure_from_dict(data)
        assert np.allclose(back.capacity, small_infra.capacity)
        assert np.allclose(back.operating_cost, small_infra.operating_cost)
        assert np.array_equal(back.server_datacenter, small_infra.server_datacenter)
        assert back.schema.names == small_infra.schema.names

    def test_request_roundtrip(self, small_request):
        back = request_from_dict(request_to_dict(small_request))
        assert np.allclose(back.demand, small_request.demand)
        assert back.groups == small_request.groups
        assert np.allclose(back.qos_guarantee, small_request.qos_guarantee)

    def test_scenario_roundtrip(self):
        spec = ScenarioSpec(servers=12, datacenters=2, vms=24, tightness=0.5)
        scenario = ScenarioGenerator(spec, seed=1).generate()
        back = scenario_from_dict(scenario_to_dict(scenario))
        assert back.n_requests == scenario.n_requests
        assert np.allclose(
            back.infrastructure.capacity, scenario.infrastructure.capacity
        )
        for a, b in zip(back.requests, scenario.requests):
            assert np.allclose(a.demand, b.demand)
            assert a.groups == b.groups
        assert back.spec.tightness == spec.tightness

    def test_file_roundtrip(self, tmp_path, small_infra):
        path = save_json(infrastructure_to_dict(small_infra), tmp_path / "infra.json")
        back = infrastructure_from_dict(load_json(path))
        assert np.allclose(back.capacity, small_infra.capacity)

    def test_kind_mismatch_rejected(self, small_infra):
        data = infrastructure_to_dict(small_infra)
        with pytest.raises(ValidationError):
            request_from_dict(data)

    def test_outcome_serializes(self, small_infra, small_request):
        outcome = FirstFitAllocator().allocate(small_infra, [small_request])
        data = outcome_to_dict(outcome)
        assert data["kind"] == "outcome"
        assert data["assignment"] == outcome.assignment.tolist()
        assert data["rejection_rate"] == outcome.rejection_rate

    def test_run_record_roundtrip(self):
        record = RunRecord(
            algorithm="x",
            servers=10,
            vms=20,
            requests=4,
            elapsed=0.5,
            rejection_rate=0.25,
            violations=1,
            provider_cost=10.0,
            downtime_cost=0.0,
            migration_cost=0.0,
        )
        assert run_record_from_dict(run_record_to_dict(record)) == record


class TestCostPerRequestMetric:
    def _record(self, requests, rejection, cost):
        return RunRecord(
            algorithm="x",
            servers=10,
            vms=20,
            requests=requests,
            elapsed=0.1,
            rejection_rate=rejection,
            violations=0,
            provider_cost=cost,
            downtime_cost=0.0,
            migration_cost=0.0,
        )

    def test_normalizes_by_accepted(self):
        record = self._record(requests=10, rejection=0.5, cost=100.0)
        assert record.accepted_requests == 5
        assert record.cost_per_accepted_request == pytest.approx(20.0)

    def test_all_rejected_is_infinite(self):
        record = self._record(requests=4, rejection=1.0, cost=50.0)
        assert record.cost_per_accepted_request == float("inf")

    def test_exposed_via_aggregate(self):
        from repro.evaluation.metrics import aggregate_records

        agg = aggregate_records(
            [self._record(10, 0.0, 100.0), self._record(10, 0.5, 100.0)]
        )
        assert agg.metric("cost_per_request") == pytest.approx((10.0 + 20.0) / 2)


class TestCli:
    def test_parser_grammar(self):
        parser = build_parser()
        args = parser.parse_args(["compare", "--servers", "8", "--vms", "16"])
        assert args.command == "compare" and args.servers == 8

    def test_table3_runs(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "populationSize" in out and "10000" in out.replace(",", "")

    def test_compare_runs(self, capsys):
        code = main(
            [
                "compare",
                "--servers",
                "8",
                "--vms",
                "12",
                "--seed",
                "1",
                "--population",
                "8",
                "--evaluations",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "round_robin" in out and "nsga3_tabu" in out

    def test_generate_writes_loadable_json(self, tmp_path, capsys):
        out_path = tmp_path / "scenario.json"
        code = main(
            ["generate", "--servers", "6", "--vms", "10", "--out", str(out_path)]
        )
        assert code == 0
        scenario = scenario_from_dict(load_json(out_path))
        assert scenario.infrastructure.m == 6

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestUNSGA3:
    _FAST = NSGAConfig(population_size=16, max_evaluations=320, seed=2)

    def test_runs_and_respects_budget(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = UNSGA3(self._FAST).run(evaluator)
        assert result.evaluations <= self._FAST.max_evaluations
        assert len(result.population) == self._FAST.population_size
        assert result.algorithm == "unsga3"

    def test_deterministic(self, small_infra, small_request):
        runs = []
        for _ in range(2):
            evaluator = PopulationEvaluator(small_infra, small_request)
            runs.append(UNSGA3(self._FAST).run(evaluator))
        assert np.array_equal(
            runs[0].population.genomes, runs[1].population.genomes
        )

    def test_with_repair_reaches_feasibility(self, small_infra, small_request):
        repair = TabuRepair(small_infra, small_request, seed=0)
        evaluator = PopulationEvaluator(small_infra, small_request)
        result = UNSGA3(self._FAST, handler=RepairHandling(repair)).run(evaluator)
        assert result.best_violations() == 0

    def test_selection_pressure_at_least_random(self, small_infra, small_request):
        """U-NSGA-III's tournament must not converge worse than plain
        NSGA-III's random mating on the same budget (same seeds)."""
        def best(cls):
            evaluator = PopulationEvaluator(small_infra, small_request)
            result = cls(self._FAST).run(evaluator)
            return result.best_objectives().sum()

        # Not a strict theorem per-instance; assert it is not wildly
        # worse (50% headroom) so regressions in the tournament logic
        # are caught without flakiness.
        assert best(UNSGA3) <= 1.5 * best(NSGA3) + 1e-9


class TestCliDiagnose:
    def test_clean_scenario_exit_zero(self, tmp_path, capsys):
        out_path = tmp_path / "s.json"
        assert main(
            ["generate", "--servers", "8", "--vms", "12", "--out", str(out_path)]
        ) == 0
        capsys.readouterr()
        assert main(["diagnose", str(out_path)]) == 0
        assert "no provable infeasibility" in capsys.readouterr().out

    def test_broken_scenario_exit_one(self, tmp_path, capsys):
        import json

        from repro.serialization import (
            load_json,
            save_json,
        )

        out_path = tmp_path / "s.json"
        main(["generate", "--servers", "8", "--vms", "12", "--out", str(out_path)])
        data = load_json(out_path)
        # Inflate one VM's demand beyond any server.
        data["requests"][0]["demand"][0] = [1e9, 1e9, 1e9]
        save_json(data, out_path)
        capsys.readouterr()
        assert main(["diagnose", str(out_path)]) == 1
        assert "unhostable_resource" in capsys.readouterr().out
