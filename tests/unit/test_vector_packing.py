"""Unit tests for the vector bin-packing baselines (FFD, dot-product)."""

import numpy as np

from repro.baselines import (
    DotProductAllocator,
    FirstFitAllocator,
    FirstFitDecreasingAllocator,
)
from repro.model import Infrastructure, Request
from repro.workloads import ScenarioGenerator, ScenarioSpec


class TestFirstFitDecreasing:
    def test_never_violates(self, small_infra, small_request):
        outcome = FirstFitDecreasingAllocator().allocate(
            small_infra, [small_request, small_request]
        )
        assert outcome.violations == 0

    def test_orders_largest_first(self, small_request):
        order = FirstFitDecreasingAllocator()._placement_order(small_request)
        demand = small_request.demand
        scale = demand.max(axis=0)
        size = (demand / scale).sum(axis=1)
        grouped = {0, 1, 2, 3}
        block1 = [k for k in order if k in grouped]
        block2 = [k for k in order if k not in grouped]
        assert list(order) == block1 + block2
        # Within each block, size non-increasing.
        for block in (block1, block2):
            sizes = [size[k] for k in block]
            assert all(a >= b - 1e-12 for a, b in zip(sizes, sizes[1:]))

    def test_respects_affinity(self, small_infra, small_request):
        outcome = FirstFitDecreasingAllocator().allocate(
            small_infra, [small_request]
        )
        if outcome.accepted[0]:
            genome = outcome.assignment
            assert genome[0] == genome[1]
            assert genome[2] != genome[3]

    def test_packs_at_least_as_well_as_first_fit_on_adversarial_mix(self):
        """The classic FFD win: a size mix that first-fit fragments."""
        infra = Infrastructure.homogeneous(
            datacenters=1, servers_per_datacenter=3, capacity=[10.0, 10.0, 10.0]
        )
        # Items 6,6,6 then 4,4,4: FF places the 6s on three servers and
        # each 4 fits beside one -> both succeed; reverse arrival order
        # (4s first) makes FF pair 4+4, stranding a 6.  FFD is immune to
        # arrival order because it sorts.
        demands = [4.0, 4.0, 4.0, 6.0, 6.0, 6.0]
        requests = [
            Request(
                demand=np.full((1, 3), d),
                qos_guarantee=np.array([0.9]),
                downtime_cost=np.array([1.0]),
                migration_cost=np.array([1.0]),
            )
            for d in demands
        ]
        ff = FirstFitAllocator().allocate(infra, requests)
        # First-fit strands one big item with this arrival order.
        assert ff.rejection_rate > 0
        # FFD sorts per request, but requests are sequential; to show
        # the sorted win we submit everything as one request.
        merged = Request(
            demand=np.array([[d, d, d] for d in demands]),
            qos_guarantee=np.full(6, 0.9),
            downtime_cost=np.ones(6),
            migration_cost=np.ones(6),
        )
        ffd = FirstFitDecreasingAllocator().allocate(infra, [merged])
        assert ffd.rejection_rate == 0.0


class TestDotProduct:
    def test_never_violates(self, small_infra, small_request):
        outcome = DotProductAllocator().allocate(
            small_infra, [small_request, small_request]
        )
        assert outcome.violations == 0

    def test_prefers_aligned_server(self):
        # Server 0 is CPU-rich, server 1 RAM-rich; a CPU-heavy demand
        # must go to server 0.
        infra = Infrastructure.homogeneous(
            datacenters=1, servers_per_datacenter=2, capacity=[1.0, 1.0, 1.0]
        )
        import dataclasses

        capacity = np.array([[100.0, 10.0, 50.0], [10.0, 100.0, 50.0]])
        infra = dataclasses.replace(infra, capacity=capacity)
        request = Request(
            demand=np.array([[50.0, 5.0, 10.0]]),
            qos_guarantee=np.array([0.9]),
            downtime_cost=np.array([1.0]),
            migration_cost=np.array([1.0]),
        )
        outcome = DotProductAllocator().allocate(infra, [request])
        assert outcome.assignment[0] == 0

    def test_acceptance_on_generated_scenarios(self):
        spec = ScenarioSpec(servers=20, datacenters=2, vms=40, tightness=0.6)
        scenario = ScenarioGenerator(spec, seed=5).generate()
        outcome = DotProductAllocator().allocate(
            scenario.infrastructure, scenario.requests
        )
        assert outcome.violations == 0
        assert outcome.rejection_rate <= 0.5
