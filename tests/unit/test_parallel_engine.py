"""Unit tests for the intra-run parallel execution engine.

The engine's entire contract is "same bytes, less wall-clock": repair
fan-out and chunked evaluation must be byte-identical to the serial
path for a given seed at every worker count, and every failure mode
must degrade to serial — also byte-identically.  These tests drive the
real pool (fork workers) on deliberately tight instances so the repair
path actually runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ea.config import NSGAConfig
from repro.ea.nsga3 import NSGA3
from repro.ea.reference_points import das_dennis_points, niching_for
from repro.engine.compiled import CompiledProblem
from repro.engine.parallel import (
    ChunkedPopulationEvaluator,
    ParallelEngine,
    RepairParams,
    attach_instance,
    publish_instance,
)
from repro.errors import ValidationError
from repro.model.request import Request
from repro.tabu.repair import TabuRepair
from repro.telemetry import MetricsRegistry, use_registry
from repro.verify import check_parallel_determinism
from repro.workloads.generator import ScenarioGenerator, ScenarioSpec


def _tight_instance(seed: int = 7, servers: int = 6, vms: int = 14):
    """A scenario tight enough that random genomes are infeasible."""
    spec = ScenarioSpec(servers=servers, datacenters=2, vms=vms, tightness=0.9)
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    merged, _ = Request.concatenate(scenario.requests)
    return scenario, merged, CompiledProblem(scenario.infrastructure, merged)


def _random_population(compiled: CompiledProblem, rows: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    n_servers = compiled.infrastructure.m
    n_vms = compiled.request.n
    return rng.integers(0, n_servers, size=(rows, n_vms), dtype=np.int64)


def _repair_population(engine: ParallelEngine | None, seed: int = 3):
    """Run one population repair, serially or through the engine."""
    scenario, merged, compiled = _tight_instance()
    repairer = TabuRepair(
        scenario.infrastructure,
        merged,
        seed=seed,
        compiled=compiled,
        engine=engine,
    )
    population = _random_population(compiled, rows=10, seed=seed)
    return repairer(population)


class TestSharedMemoryRoundtrip:
    def test_publish_attach_preserves_instance(self):
        _, _, compiled = _tight_instance()
        shared = publish_instance(compiled)
        try:
            attached = attach_instance(shared.spec)
            assert attached.compiled.fingerprint == compiled.fingerprint
            np.testing.assert_array_equal(
                attached.compiled.request.demand, compiled.request.demand
            )
            np.testing.assert_array_equal(
                attached.compiled.infrastructure.capacity,
                compiled.infrastructure.capacity,
            )
            # Views are zero-copy and read-only: workers cannot corrupt
            # the published instance.
            assert not attached.compiled.request.demand.flags.writeable
            assert attached.compiled.request.groups == compiled.request.groups
        finally:
            shared.close()

    def test_attach_cache_counts_hits(self):
        _, _, compiled = _tight_instance(seed=11)
        shared = publish_instance(compiled)
        try:
            with use_registry(MetricsRegistry()) as registry:
                first = attach_instance(shared.spec)
                second = attach_instance(shared.spec)
                assert first is second
                snapshot = registry.snapshot()
                assert snapshot.counter_total("engine.parallel.attach.misses") == 1
                assert snapshot.counter_total("engine.parallel.attach.hits") == 1
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        _, _, compiled = _tight_instance(seed=12)
        shared = publish_instance(compiled)
        shared.close()
        shared.close()  # second close must not raise


class TestRepairDeterminism:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_parallel_repair_matches_serial_bytes(self, n_workers):
        serial = _repair_population(None)
        with ParallelEngine(n_workers) as engine:
            parallel = _repair_population(engine)
            assert engine.available  # no silent fallback happened
        assert serial.tobytes() == parallel.tobytes()

    def test_repair_rng_independent_of_repairer_stream(self):
        """Population repair must not consume the repairer's own RNG —
        otherwise post-process ``repair_genome`` calls would see a
        different stream depending on how batches were dispatched."""
        scenario, merged, compiled = _tight_instance()
        a = TabuRepair(scenario.infrastructure, merged, seed=5, compiled=compiled)
        b = TabuRepair(scenario.infrastructure, merged, seed=5, compiled=compiled)
        population = _random_population(compiled, rows=6, seed=1)
        a(population)  # consume a batch on one repairer only
        genome = _random_population(compiled, rows=1, seed=2)[0]
        np.testing.assert_array_equal(
            a.repair_genome(genome), b.repair_genome(genome)
        )

    def test_telemetry_merged_from_workers(self):
        with use_registry(MetricsRegistry()) as registry:
            with ParallelEngine(2) as engine:
                _repair_population(engine)
            snapshot = registry.snapshot()
        assert snapshot.counter_total("engine.parallel.batches") >= 1
        assert snapshot.counter_total("engine.parallel.tasks") >= 1
        assert snapshot.counter_total("engine.parallel.publishes") == 1
        # Worker-side counters crossed the process boundary via the
        # snapshot merge: the repair work itself...
        assert snapshot.counter_total("tabu.repair.individuals") >= 1
        # ...and the per-worker attachment cache.
        assert snapshot.counter_total("engine.parallel.attach.misses") >= 1

    def test_fallback_on_publish_failure_is_serial_identical(self, monkeypatch):
        import repro.engine.parallel as parallel_mod

        serial = _repair_population(None)

        def boom(*args, **kwargs):
            raise OSError("no shared memory for you")

        monkeypatch.setattr(parallel_mod, "publish_instance", boom)
        with use_registry(MetricsRegistry()) as registry:
            with ParallelEngine(2) as engine:
                result = _repair_population(engine)
                assert not engine.available
            snapshot = registry.snapshot()
        assert serial.tobytes() == result.tobytes()
        assert snapshot.counter_total("engine.parallel.fallbacks") == 1

    def test_small_batches_stay_serial(self):
        """Below min_dispatch_rows the engine is never consulted, so a
        broken pool cannot hurt small windows."""
        scenario, merged, compiled = _tight_instance()
        with ParallelEngine(2, min_dispatch_rows=10_000) as engine:
            repairer = TabuRepair(
                scenario.infrastructure,
                merged,
                seed=3,
                compiled=compiled,
                engine=engine,
            )
            with use_registry(MetricsRegistry()) as registry:
                repairer(_random_population(compiled, rows=6, seed=3))
            assert registry.snapshot().counter_total("engine.parallel.batches") == 0


class TestChunkedEvaluation:
    def test_chunked_matches_serial_and_keeps_budget(self):
        _, _, compiled = _tight_instance(seed=9)
        population = _random_population(compiled, rows=24, seed=4)
        serial = compiled.evaluator()
        expected = serial.evaluate_population(population)
        with ParallelEngine(2) as engine:
            inner = compiled.evaluator()
            chunked = ChunkedPopulationEvaluator(
                inner, engine, compiled, min_rows=8
            )
            result = chunked.evaluate_population(population)
            assert engine.available
        assert expected.objectives.tobytes() == result.objectives.tobytes()
        assert expected.violations.tobytes() == result.violations.tobytes()
        # Budget accounting matches the serial evaluator exactly.
        assert inner._evaluations == serial._evaluations

    def test_small_populations_bypass_engine(self):
        _, _, compiled = _tight_instance(seed=9)
        population = _random_population(compiled, rows=4, seed=4)
        with ParallelEngine(1) as engine:
            chunked = ChunkedPopulationEvaluator(
                compiled.evaluator(), engine, compiled, min_rows=256
            )
            with use_registry(MetricsRegistry()) as registry:
                chunked.evaluate_population(population)
            snapshot = registry.snapshot()
        assert snapshot.counter_total("engine.parallel.eval_batches") == 0


class TestVerifyCheck:
    def test_check_parallel_determinism_passes(self):
        report = check_parallel_determinism(
            (1, 2), seed=1, servers=6, vms=10, max_evaluations=60
        )
        assert report.ok, report.format()
        assert report.comparisons == 10  # 3 engine + 2 allocator per count

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParallelEngine(0)
        with pytest.raises(ValidationError):
            ParallelEngine(1, tasks_per_worker=0)
        with pytest.raises(ValidationError):
            NSGAConfig(n_workers=-1)
        with pytest.raises(ValidationError):
            NSGAConfig(parallel_eval_min_pop=0)


class TestReferencePointCache:
    def test_lattice_memoized_and_read_only(self):
        a = das_dennis_points(3, 12)
        b = das_dennis_points(3, 12)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 99.0

    def test_niching_shared_across_algorithm_instances(self):
        config = NSGAConfig(population_size=8, max_evaluations=32)
        first = NSGA3(config=config)
        second = NSGA3(config=config)
        assert first.niching is second.niching
        assert first.niching is niching_for(3, config.reference_point_divisions)

    def test_validation_still_enforced(self):
        with pytest.raises(ValidationError):
            das_dennis_points(1, 4)
        with pytest.raises(ValidationError):
            das_dennis_points(3, 0)
