"""Unit tests for the spine-leaf fabric and its analysis functions."""

import numpy as np
import pytest

from repro.errors import TopologyError, ValidationError
from repro.topology import (
    FabricSpec,
    SpineLeafFabric,
    hop_distance,
    oversubscription_ratio,
    path_redundancy,
)


@pytest.fixture
def fabric() -> SpineLeafFabric:
    return SpineLeafFabric(
        FabricSpec(
            datacenters=2, spines=3, leaves=4, servers_per_leaf=2, cores=2
        )
    )


class TestSpec:
    def test_sizes(self):
        spec = FabricSpec(datacenters=2, spines=2, leaves=4, servers_per_leaf=8)
        assert spec.servers_per_datacenter == 32
        assert spec.total_servers == 64

    def test_multi_dc_needs_core(self):
        with pytest.raises(TopologyError):
            FabricSpec(datacenters=2, cores=0)

    def test_single_dc_without_core_allowed(self):
        spec = FabricSpec(datacenters=1, cores=0)
        fabric = SpineLeafFabric(spec)
        assert fabric.n_servers == spec.total_servers

    def test_positive_sizes_enforced(self):
        with pytest.raises(ValidationError):
            FabricSpec(spines=0)
        with pytest.raises(ValidationError):
            FabricSpec(server_link_gbps=0)


class TestFabricStructure:
    def test_server_count_and_dc_map(self, fabric):
        assert fabric.n_servers == 16
        assert fabric.server_datacenter.tolist() == [0] * 8 + [1] * 8

    def test_every_server_single_homed(self, fabric):
        for server in fabric.server_nodes:
            assert fabric.graph.degree[server] == 1

    def test_leaf_of(self, fabric):
        leaf = fabric.leaf_of(fabric.server_nodes[0])
        assert fabric.graph.nodes[leaf]["tier"] == "leaf"

    def test_edge_tiers_labelled(self, fabric):
        tiers = {data["tier"] for _, _, data in fabric.graph.edges(data=True)}
        assert tiers == {"core-spine", "spine-leaf", "leaf-server"}


class TestAnalysis:
    def test_hop_distances(self, fabric):
        servers = fabric.server_nodes
        assert hop_distance(fabric, servers[0], servers[0]) == 0
        assert hop_distance(fabric, servers[0], servers[1]) == 2  # same leaf
        assert hop_distance(fabric, servers[0], servers[2]) == 4  # same dc
        assert hop_distance(fabric, servers[0], servers[8]) == 6  # cross dc

    def test_redundancy_same_dc_equals_spines(self, fabric):
        # Two leaves in one datacenter are joined through all 3 spines
        # (plus core detours) -- at least the spine count.
        servers = fabric.server_nodes
        assert path_redundancy(fabric, servers[0], servers[2]) >= 3

    def test_redundancy_cross_dc_limited_by_leaf_uplinks(self, fabric):
        # Edge-disjoint paths may share core *nodes*, so the cross-DC
        # cut is the 3 leaf uplinks, not the 2 cores.
        servers = fabric.server_nodes
        assert path_redundancy(fabric, servers[0], servers[8]) == 3

    def test_redundancy_same_leaf_trivial(self, fabric):
        servers = fabric.server_nodes
        assert path_redundancy(fabric, servers[0], servers[1]) == 1

    def test_oversubscription(self):
        fabric = SpineLeafFabric(
            FabricSpec(
                datacenters=1,
                cores=0,
                spines=2,
                leaves=2,
                servers_per_leaf=8,
                server_link_gbps=10,
                leaf_uplink_gbps=40,
            )
        )
        assert oversubscription_ratio(fabric) == pytest.approx(1.0)

    def test_non_server_node_rejected(self, fabric):
        with pytest.raises(TopologyError):
            hop_distance(fabric, "core:0", fabric.server_nodes[0])


class TestToInfrastructure:
    def test_homogeneous(self, fabric):
        infra = fabric.to_infrastructure(capacity=[16, 64, 500])
        assert infra.m == fabric.n_servers
        assert infra.g == 2
        assert np.all(infra.capacity == [16, 64, 500])
        assert infra.server_names == tuple(fabric.server_nodes)

    def test_per_server_costs(self, fabric):
        costs = np.arange(fabric.n_servers, dtype=np.float64)
        infra = fabric.to_infrastructure(
            capacity=[16, 64, 500], operating_cost=costs
        )
        assert np.array_equal(infra.operating_cost, costs)

    def test_full_capacity_matrix(self, fabric):
        capacity = np.random.default_rng(0).uniform(
            10, 20, size=(fabric.n_servers, 3)
        )
        infra = fabric.to_infrastructure(capacity=capacity)
        assert np.allclose(infra.capacity, capacity)
