"""Unit tests for the objective system (Eq. 15, 22-26)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.placement import UNPLACED
from repro.objectives import (
    DowntimeCost,
    MigrationCost,
    ObjectiveVector,
    PopulationEvaluator,
    UsageOperatingCost,
    aggregate_scalar,
    loads_from_usage,
    qos_from_load,
)


class TestQosModel:
    def test_flat_below_knee(self):
        qos = qos_from_load(np.array([0.0, 0.5, 0.8]), 0.8, 0.99)
        assert np.allclose(qos, 0.99)

    def test_exponential_decay_above_knee(self):
        # Eq. 24: Q = QM * exp((LM - L) / (1 - LM)) for L > LM.
        lm, qm, load = 0.8, 0.99, 0.9
        expect = qm * np.exp((lm - load) / (1 - lm))
        assert np.isclose(qos_from_load(np.array([load]), lm, qm)[0], expect)

    def test_monotone_decreasing(self):
        loads = np.linspace(0.0, 3.0, 50)
        qos = qos_from_load(loads, 0.7, 0.95)
        assert np.all(np.diff(qos) <= 1e-12)

    def test_infinite_load_gives_zero_qos(self):
        assert qos_from_load(np.array([np.inf]), 0.8, 0.99)[0] == 0.0

    def test_broadcasting_over_population(self):
        loads = np.random.default_rng(0).random((4, 3, 2))
        lm = np.full((3, 2), 0.8)
        qm = np.full((3, 2), 0.9)
        assert qos_from_load(loads, lm, qm).shape == (4, 3, 2)

    def test_max_load_validated(self):
        with pytest.raises(ValueError):
            qos_from_load(np.array([0.5]), np.array([1.0]), np.array([0.9]))

    def test_loads_eq25(self):
        usage = np.array([[5.0, 0.0]])
        capacity = np.array([[10.0, 0.0]])
        loads = loads_from_usage(usage, capacity)
        assert loads[0, 0] == 0.5
        assert loads[0, 1] == 0.0  # zero capacity, zero usage
        loads2 = loads_from_usage(np.array([[0.0, 1.0]]), capacity)
        assert np.isinf(loads2[0, 1])  # zero capacity, positive usage


class TestUsageCost:
    def test_per_resource_accounting(self, tiny_infra):
        cost = UsageOperatingCost(tiny_infra)
        # rates: server0 = 1 + 0.5 = 1.5; server1 = 2 + 0.5 = 2.5.
        assert cost.value(np.array([0, 0])) == pytest.approx(3.0)
        assert cost.value(np.array([0, 1])) == pytest.approx(4.0)

    def test_unplaced_pays_nothing(self, tiny_infra):
        cost = UsageOperatingCost(tiny_infra)
        assert cost.value(np.array([0, UNPLACED])) == pytest.approx(1.5)

    def test_per_server_operating_mode(self, tiny_infra):
        cost = UsageOperatingCost(tiny_infra, per_server_operating=True)
        # Both VMs on server 0: E_0 charged once (1.0) + 2 * U_0 (0.5).
        assert cost.value(np.array([0, 0])) == pytest.approx(2.0)
        # Split: E_0 + E_1 + 2 * 0.5 = 4.0.
        assert cost.value(np.array([0, 1])) == pytest.approx(4.0)

    def test_batch_matches_single_both_modes(self, small_infra):
        rng = np.random.default_rng(5)
        population = rng.integers(0, 8, size=(20, 6))
        population[4, 1] = UNPLACED
        for mode in (False, True):
            cost = UsageOperatingCost(small_infra, per_server_operating=mode)
            batch = cost.batch(population)
            single = [cost.value(row) for row in population]
            assert np.allclose(batch, single), f"mode={mode}"


class TestDowntime:
    def test_zero_when_guarantee_met(self, tiny_infra, tiny_request):
        downtime = DowntimeCost(tiny_infra, tiny_request)
        # One VM per server: load 0.4 < knee 0.5 -> QoS 0.9 >= 0.8.
        assert downtime.value(np.array([0, 1])) == pytest.approx(0.0)

    def test_positive_when_overloaded(self, tiny_infra, tiny_request):
        downtime = DowntimeCost(tiny_infra, tiny_request)
        # Both on server 0: load 0.8 > knee 0.5 -> QoS decays below 0.8.
        value = downtime.value(np.array([0, 0]))
        assert value > 0.0

    def test_shortfall_formula(self, tiny_infra, tiny_request):
        downtime = DowntimeCost(tiny_infra, tiny_request)
        load = 0.8
        qos = 0.9 * np.exp((0.5 - load) / 0.5)
        shortfall = max(0.0, (0.8 - qos) / 0.8)
        expect = 2 * 10.0 * shortfall  # two VMs, C^U = 10 each
        assert downtime.value(np.array([0, 0])) == pytest.approx(expect)

    def test_literal_mode_rewards_qos(self, tiny_infra, tiny_request):
        literal = DowntimeCost(tiny_infra, tiny_request, mode="literal")
        # Literal Eq. 23: cost = C^U * Q / C^Q, positive even when met.
        value = literal.value(np.array([0, 1]))
        assert value == pytest.approx(2 * 10.0 * 0.9 / 0.8)

    def test_unknown_mode_rejected(self, tiny_infra, tiny_request):
        with pytest.raises(ValidationError):
            DowntimeCost(tiny_infra, tiny_request, mode="bogus")

    def test_base_usage_raises_load(self, tiny_infra, tiny_request):
        base = np.full((2, 2), 4.0)  # pre-existing tenants
        with_base = DowntimeCost(tiny_infra, tiny_request, base_usage=base)
        without = DowntimeCost(tiny_infra, tiny_request)
        genome = np.array([0, 1])
        assert with_base.value(genome) >= without.value(genome)


class TestMigration:
    def test_inactive_for_first_placement(self, tiny_request):
        migration = MigrationCost(tiny_request)
        assert not migration.is_active
        assert migration.value(np.array([0, 1])) == 0.0

    def test_charges_moved_resources(self, tiny_request):
        migration = MigrationCost(tiny_request, np.array([0, 0]))
        # M = [1, 3].
        assert migration.value(np.array([0, 1])) == pytest.approx(3.0)
        assert migration.value(np.array([1, 0])) == pytest.approx(1.0)
        assert migration.value(np.array([1, 1])) == pytest.approx(4.0)
        assert migration.value(np.array([0, 0])) == 0.0

    def test_boot_from_unplaced_is_free(self, tiny_request):
        migration = MigrationCost(tiny_request, np.array([UNPLACED, 0]))
        assert migration.value(np.array([1, 0])) == 0.0

    def test_batch_matches_single(self, tiny_request):
        migration = MigrationCost(tiny_request, np.array([0, 1]))
        population = np.array([[0, 1], [1, 0], [0, 0], [1, 1]])
        batch = migration.batch(population)
        single = [migration.value(row) for row in population]
        assert np.allclose(batch, single)


class TestAggregate:
    def test_vector_roundtrip(self):
        vector = ObjectiveVector(1.0, 2.0, 3.0)
        assert ObjectiveVector.from_array(vector.as_array()) == vector

    def test_equal_weights_default(self):
        assert ObjectiveVector(1.0, 2.0, 3.0).aggregate() == pytest.approx(6.0)

    def test_custom_weights(self):
        z = aggregate_scalar(np.array([1.0, 2.0, 3.0]), np.array([1.0, 0.0, 2.0]))
        assert z == pytest.approx(7.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_scalar(np.ones(3), np.array([1.0, -1.0, 1.0]))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_scalar(np.ones((4, 2)))


class TestPopulationEvaluator:
    def test_batch_matches_single(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        rng = np.random.default_rng(6)
        population = rng.integers(0, 8, size=(15, 6))
        result = evaluator.evaluate_population(population)
        for i in range(15):
            vector = evaluator.evaluate(population[i]).as_array()
            assert np.allclose(vector, result.objectives[i])
            assert evaluator.violations(population[i]) == result.violations[i]

    def test_counts_evaluations(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        evaluator.evaluate_population(np.zeros((4, 6), dtype=np.int64))
        evaluator.evaluate(np.zeros(6, dtype=np.int64))
        assert evaluator.evaluation_count == 5
        evaluator.reset_counter()
        assert evaluator.evaluation_count == 0

    def test_migration_column_active_with_previous(
        self, small_infra, small_request
    ):
        previous = np.array([0, 0, 2, 3, 4, 5])
        evaluator = PopulationEvaluator(
            small_infra, small_request, previous_assignment=previous
        )
        moved = previous.copy()
        moved[2] = 6
        vector = evaluator.evaluate(moved)
        assert vector.migration_cost == pytest.approx(
            small_request.migration_cost[2]
        )

    def test_result_feasible_mask(self, small_infra, small_request):
        evaluator = PopulationEvaluator(small_infra, small_request)
        good = np.array([[0, 0, 2, 3, 4, 5]])
        result = evaluator.evaluate_population(good)
        assert result.feasible.tolist() == [True]
