"""Property tests: the dynamic scenario universe is deterministic.

Two families of guarantees (docs/SCENARIOS.md):

* **byte identity per seed** — compiling and running any registered
  scenario twice at the same seed yields the identical event stream,
  the identical metrics and the identical final scheduler ledger;
* **stream/schedule separation** — parameters that only shape how the
  scheduler *batches* the stream (``window_length``,
  ``reoptimize_every``) cannot move the event fingerprint, and per-axis
  RNG streams keep unrelated axes (e.g. arrivals vs failures) stable
  when one knob changes.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.round_robin import RoundRobinAllocator
from repro.workloads.scenarios import (
    compile_scenario,
    get_scenario,
    scenario_names,
)

ALL_SCENARIOS = scenario_names()


def _run(name: str, seed: int):
    compiled = compile_scenario(name, seed=seed)
    allocator = RoundRobinAllocator()
    try:
        return compiled, compiled.run(allocator)
    finally:
        allocator.close()


class TestByteIdentityPerSeed:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_registry_compiles_and_runs_identically(self, name):
        first_compiled, first = _run(name, seed=3)
        second_compiled, second = _run(name, seed=3)
        # The event stream is identical record for record...
        assert first_compiled.events_payload() == second_compiled.events_payload()
        assert first_compiled.fingerprint() == second_compiled.fingerprint()
        # ...and so is everything the scheduler did with it
        # (execution_time is wall-clock, the one non-deterministic field).
        assert dataclasses.replace(
            first.metrics, execution_time=0.0
        ) == dataclasses.replace(second.metrics, execution_time=0.0)
        assert first.ledger_fingerprint == second.ledger_fingerprint
        assert len(first.reports) == len(second.reports)

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_scenario_produces_work(self, name):
        compiled, result = _run(name, seed=3)
        assert len(compiled) > 0
        assert result.metrics.windows >= 1
        assert result.metrics.accepted + result.metrics.rejected > 0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_compile_is_pure_in_seed(self, seed):
        one = compile_scenario("steady_churn", seed=seed)
        two = compile_scenario("steady_churn", seed=seed)
        assert one.event_fingerprint() == two.event_fingerprint()
        assert one.fingerprint() == two.fingerprint()

    def test_different_seeds_differ(self):
        fingerprints = {
            compile_scenario("steady_churn", seed=s).event_fingerprint()
            for s in range(6)
        }
        assert len(fingerprints) == 6


class TestStreamScheduleSeparation:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        window_length=st.sampled_from([0.25, 0.5, 2.0]),
        reoptimize_every=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_event_fingerprint_ignores_batching_knobs(
        self, seed, window_length, reoptimize_every
    ):
        spec = get_scenario("steady_churn")
        base = compile_scenario(spec, seed=seed)
        rebatched = compile_scenario(
            dataclasses.replace(
                spec,
                window_length=window_length,
                reoptimize_every=reoptimize_every,
            ),
            seed=seed,
        )
        assert base.event_fingerprint() == rebatched.event_fingerprint()

    def test_failure_knob_cannot_shift_arrivals(self):
        spec = get_scenario("steady_churn")
        quiet = compile_scenario(spec, seed=11)
        stormy = compile_scenario(
            dataclasses.replace(spec, failure_rate=1.5), seed=11
        )
        arrivals = [
            r for r in quiet.events_payload() if r["type"] == "arrival"
        ]
        stormy_arrivals = [
            r for r in stormy.events_payload() if r["type"] == "arrival"
        ]
        assert arrivals == stormy_arrivals
        assert stormy.failures and not quiet.failures

    def test_drain_knob_cannot_shift_failures(self):
        spec = get_scenario("failure_storm")
        plain = compile_scenario(spec, seed=11)
        draining = compile_scenario(
            dataclasses.replace(spec, drain_count=2), seed=11
        )
        assert [
            (e.time, e.server) for e in plain.failures
        ] == [(e.time, e.server) for e in draining.failures]
        assert len(draining.drains) == 2 and not plain.drains
