"""Property tests: the tabu repair and genetic operators on arbitrary
instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import ConstraintSet
from repro.cp import CPSolver, SearchLimits
from repro.ea.operators import polynomial_mutation, sbx_crossover, uniform_crossover
from repro.tabu import TabuRepair

from tests.property.test_prop_constraints_objectives import instances


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_repair_never_increases_violations(instance, seed):
    infra, request = instance
    rng = np.random.default_rng(seed)
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    repair = TabuRepair(infra, request, seed=seed)
    population = rng.integers(0, infra.m, size=(6, request.n))
    before = constraint_set.batch_violations(population)
    fixed = repair(population)
    after = constraint_set.batch_violations(fixed)
    assert np.all(after <= before)
    assert fixed.min() >= 0 and fixed.max() < infra.m
    assert fixed.shape == population.shape


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_repair_reaches_feasibility_when_cp_proves_it(instance, seed):
    """If CP finds the instance feasible from scratch, repair from the
    CP solution (already feasible) must keep it feasible."""
    infra, request = instance
    solution = CPSolver(
        infra, request, limits=SearchLimits(max_nodes=5_000, time_limit=1.0)
    ).find_feasible()
    if not solution.found:
        return  # instance infeasible or too hard for the budget
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    repair = TabuRepair(infra, request, seed=seed)
    fixed = repair.repair_genome(solution.assignment)
    assert constraint_set.violations(fixed) == 0


@given(
    st.integers(1, 40),
    st.integers(2, 60),
    st.integers(1, 20),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_sbx_pm_output_domain(pairs, n, m, seed):
    rng = np.random.default_rng(seed)
    parents = rng.integers(0, m, size=(2 * pairs, n))
    children = sbx_crossover(parents, n_servers=m, seed=seed)
    assert children.shape == parents.shape
    assert children.min() >= 0 and children.max() < m
    mutated = polynomial_mutation(children, n_servers=m, seed=seed)
    assert mutated.min() >= 0 and mutated.max() < m


@given(
    st.integers(1, 30),
    st.integers(1, 40),
    st.integers(1, 50),
    st.integers(0, 2**31 - 1),
    st.floats(0.0, 1.0),
)
@settings(max_examples=50, deadline=None)
def test_uniform_crossover_gene_conservation(pairs, n, m, seed, rate):
    rng = np.random.default_rng(seed)
    parents = rng.integers(0, m, size=(2 * pairs, n))
    children = uniform_crossover(parents, rate=rate, seed=seed)
    for pair in range(pairs):
        p = np.sort(parents[2 * pair : 2 * pair + 2], axis=0)
        c = np.sort(children[2 * pair : 2 * pair + 2], axis=0)
        assert np.array_equal(p, c)


@given(st.integers(2, 30), st.integers(1, 40), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_sbx_children_within_parent_convex_hull_mostly(n_genes, m, seed):
    """SBX children stay inside [0, m); with identical parents they are
    exactly the parents."""
    parents = np.tile(
        np.random.default_rng(seed).integers(0, m, size=n_genes), (4, 1)
    )
    children = sbx_crossover(parents, n_servers=m, rate=1.0, seed=seed)
    assert np.array_equal(children, parents)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_repair_idempotent_on_feasible_output(instance, seed):
    """Once the repair returns a feasible genome, repairing it again is
    the identity (feasible genomes are never touched)."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    repair = TabuRepair(infra, request, seed=seed)
    genome = rng.integers(0, infra.m, size=request.n)
    once = repair.repair_genome(genome)
    if constraint_set.violations(once) == 0:
        twice = repair.repair_genome(once.copy())
        assert np.array_equal(once, twice)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_group_block_crossover_preserves_rule_consistency(instance, seed):
    """Children of rule-consistent parents stay rule-consistent under
    the group-aware crossover (on arbitrary instances)."""
    from repro.cp import CPSolver, SearchLimits
    from repro.ea.operators import group_block_crossover

    infra, request = instance
    if not request.groups:
        return
    solution = CPSolver(
        infra, request, limits=SearchLimits(max_nodes=3_000, time_limit=0.5)
    ).find_feasible()
    if not solution.found:
        return
    parents = np.vstack([solution.assignment] * 4)
    children = group_block_crossover(parents, request, rate=1.0, seed=seed)
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    for child in children:
        for constraint in constraint_set.group_constraints:
            assert constraint.violations(child) == 0
