"""Property tests over the allocator contract: on arbitrary instances,
non-EA allocators never violate constraints, outcomes are internally
consistent, and committed state stays exact."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BestFitAllocator,
    DotProductAllocator,
    FilterSchedulerAllocator,
    FirstFitAllocator,
    FirstFitDecreasingAllocator,
    RoundRobinAllocator,
    WorstFitAllocator,
)
from repro.constraints import ConstraintSet
from repro.model.placement import UNPLACED

from tests.property.test_prop_constraints_objectives import instances

_GREEDY = [
    FirstFitAllocator,
    BestFitAllocator,
    WorstFitAllocator,
    RoundRobinAllocator,
    FirstFitDecreasingAllocator,
    DotProductAllocator,
    FilterSchedulerAllocator,
]


@given(instances(), st.sampled_from(_GREEDY))
@settings(max_examples=60, deadline=None)
def test_greedy_allocators_never_violate(instance, allocator_cls):
    infra, request = instance
    outcome = allocator_cls().allocate(infra, [request])
    assert outcome.violations == 0
    # Internal consistency: breakdown (minus unplaced) sums to the
    # violation count, acceptance matches unplaced-ness for a single
    # request with no violations.
    non_unplaced = sum(
        v for k, v in outcome.violation_breakdown.items() if k != "unplaced"
    )
    assert non_unplaced == outcome.violations
    if outcome.accepted[0]:
        assert np.all(outcome.assignment != UNPLACED)


@given(instances(), st.sampled_from(_GREEDY))
@settings(max_examples=40, deadline=None)
def test_greedy_placements_respect_capacity_exactly(instance, allocator_cls):
    infra, request = instance
    outcome = allocator_cls().allocate(infra, [request])
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    assert constraint_set.capacity.violations(outcome.assignment) == 0


@given(instances())
@settings(max_examples=30, deadline=None)
def test_outcome_objectives_consistent_with_evaluator(instance):
    """The outcome's objective vector must equal a fresh evaluation of
    its own assignment (no stale numbers)."""
    from repro.objectives import PopulationEvaluator

    infra, request = instance
    outcome = BestFitAllocator().allocate(infra, [request])
    evaluator = PopulationEvaluator(infra, request)
    fresh = evaluator.evaluate(outcome.assignment).as_array()
    assert np.allclose(fresh, outcome.objectives)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_base_usage_monotonicity(instance, seed):
    """Pre-committed usage can only reduce what a greedy allocator
    accepts, never increase it."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    empty = FirstFitAllocator().allocate(infra, [request])
    base = rng.uniform(0, 1, size=(infra.m, infra.h)) * infra.effective_capacity
    loaded = FirstFitAllocator().allocate(infra, [request], base_usage=base)
    assert loaded.accepted.sum() <= empty.accepted.sum()
