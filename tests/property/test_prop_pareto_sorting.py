"""Property tests: Pareto dominance, nondominated sorting, crowding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ea import crowding_distance, fast_non_dominated_sort
from repro.utils.pareto import (
    dominance_matrix,
    dominates,
    non_dominated_mask,
    pareto_front_indices,
)

objective_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 24), st.integers(2, 4)),
    elements=st.floats(0, 100, allow_nan=False, width=32),
)


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_dominance_is_irreflexive_and_antisymmetric(objs):
    dom = dominance_matrix(objs)
    assert not dom.diagonal().any()
    assert not (dom & dom.T).any()


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_front_zero_is_exactly_the_nondominated_set(objs):
    ranks = fast_non_dominated_sort(objs)
    mask = non_dominated_mask(objs)
    assert np.array_equal(ranks == 0, mask)


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_ranks_are_contiguous_from_zero(objs):
    ranks = fast_non_dominated_sort(objs)
    present = np.unique(ranks)
    assert present.tolist() == list(range(present.size))


@given(objective_matrices)
@settings(max_examples=40, deadline=None)
def test_no_dominance_within_a_front(objs):
    ranks = fast_non_dominated_sort(objs)
    for front_id in np.unique(ranks):
        members = np.flatnonzero(ranks == front_id)
        for i in members:
            for j in members:
                assert not dominates(objs[i], objs[j])


@given(objective_matrices)
@settings(max_examples=40, deadline=None)
def test_dominator_always_in_earlier_front(objs):
    ranks = fast_non_dominated_sort(objs)
    dom = dominance_matrix(objs)
    rows, cols = np.nonzero(dom)
    for i, j in zip(rows, cols):
        assert ranks[i] < ranks[j]


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_pareto_front_invariant_under_duplication(objs):
    front = set(pareto_front_indices(objs).tolist())
    doubled = np.vstack([objs, objs])
    front2 = pareto_front_indices(doubled)
    # Every original front index must stay nondominated after doubling.
    assert front <= set(front2.tolist())


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_crowding_distance_nonnegative_and_boundary_infinite(objs):
    distance = crowding_distance(objs)
    assert np.all(distance >= 0)
    if objs.shape[0] >= 2:
        for col in range(objs.shape[1]):
            order = np.argsort(objs[:, col], kind="stable")
            assert np.isinf(distance[order[0]])
            assert np.isinf(distance[order[-1]])


@given(objective_matrices)
@settings(max_examples=60, deadline=None)
def test_crowding_invariant_to_objective_scaling(objs):
    scaled = objs * np.array([10.0] * objs.shape[1])
    base = crowding_distance(objs)
    after = crowding_distance(scaled)
    finite = np.isfinite(base) & np.isfinite(after)
    assert np.allclose(base[finite], after[finite], rtol=1e-9, atol=1e-12)
