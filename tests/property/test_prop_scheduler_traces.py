"""Property tests: scheduler invariants under arbitrary traces.

Whatever the arrival/departure/failure stream, the platform ledger
must stay exact, capacity must never be exceeded on healthy servers,
and every arrival must receive exactly one decision per submission
(re-decisions only through failure displacement)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BestFitAllocator, FirstFitAllocator
from repro.scheduler import TimeWindowScheduler, summarize_reports
from repro.workloads import (
    ScenarioGenerator,
    ScenarioSpec,
    TraceGenerator,
    TraceSpec,
)


@st.composite
def trace_setups(draw):
    servers = draw(st.integers(6, 24))
    scenario_spec = ScenarioSpec(
        servers=servers,
        datacenters=draw(st.integers(1, 2)),
        vms=draw(st.integers(10, 40)),
        tightness=draw(st.floats(0.3, 0.8)),
    )
    trace_spec = TraceSpec(
        horizon=draw(st.floats(2.0, 8.0)),
        arrival_rate=draw(st.floats(0.5, 4.0)),
        mean_lifetime=draw(st.floats(1.0, 6.0)),
        failure_rate=draw(st.floats(0.0, 0.6)),
    )
    seed = draw(st.integers(0, 2**31 - 1))
    window = draw(st.sampled_from([0.5, 1.0, 2.0]))
    return scenario_spec, trace_spec, seed, window


@given(trace_setups(), st.sampled_from([FirstFitAllocator, BestFitAllocator]))
@settings(max_examples=25, deadline=None)
def test_ledger_exact_and_capacity_respected(setup, allocator_cls):
    scenario_spec, trace_spec, seed, window = setup
    estate = ScenarioGenerator(scenario_spec, seed=seed).generate().infrastructure
    trace, _ = TraceGenerator(trace_spec, scenario_spec, seed=seed).generate()

    scheduler = TimeWindowScheduler(
        estate, allocator_cls(), window_length=window
    )
    trace.apply_to(scheduler)
    reports = scheduler.run(max_windows=128)

    # Ledger exactness after arbitrary churn.
    scheduler.state.verify_consistency()

    # Committed usage never exceeds effective capacity on any healthy
    # server (greedy allocators never violate, so committed state
    # cannot either).
    usage = scheduler.state.committed_usage
    effective = estate.effective_capacity
    healthy = np.ones(estate.m, dtype=bool)
    for server in scheduler.failed_servers:
        healthy[server] = False
    assert np.all(usage[healthy] <= effective[healthy] + 1e-6)

    # Decision accounting.
    summary = summarize_reports(reports) if reports else None
    if summary is not None:
        assert summary.arrivals == len(trace.arrivals)
        # One decision per arrival plus one per displacement.
        assert summary.accepted + summary.rejected == (
            summary.arrivals + summary.displaced
        )
        assert summary.failures <= len(trace.failures)


@given(trace_setups())
@settings(max_examples=15, deadline=None)
def test_failed_servers_hold_nothing(setup):
    """After processing, no hosted resource may sit on a failed server."""
    scenario_spec, trace_spec, seed, window = setup
    estate = ScenarioGenerator(scenario_spec, seed=seed).generate().infrastructure
    trace, _ = TraceGenerator(trace_spec, scenario_spec, seed=seed).generate()
    # Strip recoveries so failures are permanent within the run.
    trace.recoveries.clear()

    scheduler = TimeWindowScheduler(
        estate, FirstFitAllocator(), window_length=window
    )
    trace.apply_to(scheduler)
    scheduler.run(max_windows=128)

    failed = scheduler.failed_servers
    for key in scheduler.state.tenants():
        assignment = scheduler.state.previous_assignment(key)
        hosted = set(assignment[assignment >= 0].tolist())
        assert not (hosted & failed), (key, hosted, failed)
