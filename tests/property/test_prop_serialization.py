"""Property tests: serialization round-trips on arbitrary instances,
and archive invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ea import ParetoArchive
from repro.serialization import (
    infrastructure_from_dict,
    infrastructure_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.utils.pareto import non_dominated_mask

from tests.property.test_prop_constraints_objectives import instances


@given(instances())
@settings(max_examples=30, deadline=None)
def test_instance_roundtrip_bitexact(instance):
    infra, request = instance
    infra_back = infrastructure_from_dict(infrastructure_to_dict(infra))
    assert np.array_equal(infra_back.capacity, infra.capacity)
    assert np.array_equal(infra_back.capacity_factor, infra.capacity_factor)
    assert np.array_equal(infra_back.operating_cost, infra.operating_cost)
    assert np.array_equal(infra_back.usage_cost, infra.usage_cost)
    assert np.array_equal(infra_back.max_load, infra.max_load)
    assert np.array_equal(infra_back.max_qos, infra.max_qos)
    assert np.array_equal(infra_back.server_datacenter, infra.server_datacenter)
    assert infra_back.schema.names == infra.schema.names

    request_back = request_from_dict(request_to_dict(request))
    assert np.array_equal(request_back.demand, request.demand)
    assert np.array_equal(request_back.qos_guarantee, request.qos_guarantee)
    assert np.array_equal(request_back.downtime_cost, request.downtime_cost)
    assert np.array_equal(request_back.migration_cost, request.migration_cost)
    assert request_back.groups == request.groups


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False, width=32),
            st.floats(0, 100, allow_nan=False, width=32),
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(2, 16),
)
@settings(max_examples=50, deadline=None)
def test_archive_always_mutually_nondominated(points, capacity):
    archive = ParetoArchive(capacity=capacity)
    for i, (x, y) in enumerate(points):
        archive.add(np.array([i]), np.array([x, y]))
    assert len(archive) <= capacity
    if len(archive):
        objs = archive.objectives
        assert non_dominated_mask(objs).all()


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False, width=32),
            st.floats(0, 100, allow_nan=False, width=32),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_archive_keeps_global_minima(points):
    """Whatever arrives, the per-objective minima always survive an
    unbounded archive."""
    archive = ParetoArchive(capacity=1000)
    for i, (x, y) in enumerate(points):
        archive.add(np.array([i]), np.array([x, y]))
    objs = archive.objectives
    arr = np.asarray(points)
    assert objs[:, 0].min() == arr[:, 0].min()
    assert objs[:, 1].min() == arr[:, 1].min()
