"""Property tests: the incremental evaluator must track a from-scratch
evaluation exactly (violations) / to float noise (objectives) under any
random walk of relocations, on arbitrary instances and configurations.

The long-walk parity checks are routed through the
:class:`repro.verify.DifferentialOracle`, which owns the per-term
comparison logic (and is itself under test here: zero mismatches over
hundreds of moves on three scenario sizes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CompiledProblem
from repro.model import AttributeSchema, Infrastructure, PlacementGroup, Request
from repro.model.placement import UNPLACED
from repro.types import PlacementRule
from repro.verify import DifferentialOracle
from repro.workloads import ScenarioGenerator, ScenarioSpec


@st.composite
def instances(draw):
    """A random small (infrastructure, request) pair with groups."""
    m = draw(st.integers(2, 10))
    g = draw(st.integers(1, min(3, m)))
    n = draw(st.integers(1, 12))
    h = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))

    capacity = rng.uniform(10, 100, size=(m, h))
    server_dc = np.sort(rng.integers(0, g, size=m))
    server_dc[:g] = np.arange(g)
    server_dc = np.sort(server_dc)
    infra = Infrastructure(
        capacity=capacity,
        capacity_factor=rng.uniform(0.5, 1.0, size=(m, h)),
        operating_cost=rng.uniform(0.1, 5.0, size=m),
        usage_cost=rng.uniform(0.1, 5.0, size=m),
        max_load=rng.uniform(0.3, 0.95, size=(m, h)),
        max_qos=rng.uniform(0.5, 0.99, size=(m, h)),
        server_datacenter=server_dc,
        schema=AttributeSchema(names=tuple(f"a{i}" for i in range(h))),
    )

    groups = []
    if n >= 2 and draw(st.booleans()):
        rule = draw(st.sampled_from(list(PlacementRule)))
        size = draw(st.integers(2, min(4, n)))
        members = tuple(
            int(x) for x in rng.choice(n, size=size, replace=False)
        )
        groups.append(PlacementGroup(rule, members))

    request = Request(
        demand=rng.uniform(0.0, 30.0, size=(n, h)),
        qos_guarantee=rng.uniform(0.5, 1.0, size=n),
        downtime_cost=rng.uniform(0.0, 10.0, size=n),
        migration_cost=rng.uniform(0.0, 10.0, size=n),
        groups=tuple(groups),
        schema=infra.schema,
    )
    return infra, request


@given(
    instances(),
    st.integers(0, 2**31 - 1),
    st.booleans(),
    st.sampled_from(["shortfall", "literal"]),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_random_walk_tracks_reference(
    instance, seed, with_previous, downtime_mode, per_server, qos_strict
):
    """A random walk of apply_move keeps the incremental state equal to
    the from-scratch PopulationEvaluator: violations exactly, all three
    objectives to float re-association noise."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    genome = rng.integers(0, infra.m, size=request.n)
    previous = (
        rng.integers(0, infra.m, size=request.n) if with_previous else None
    )

    compiled = CompiledProblem.compile(infra, request)
    state = compiled.incremental(
        genome,
        previous_assignment=previous,
        downtime_mode=downtime_mode,
        per_server_operating=per_server,
        include_assignment=True,
        qos_strict=qos_strict,
    )
    evaluator = compiled.evaluator(
        previous_assignment=previous,
        downtime_mode=downtime_mode,
        per_server_operating=per_server,
        include_assignment_constraint=True,
        qos_strict=qos_strict,
    )

    for step in range(25):
        vm = int(rng.integers(0, request.n))
        # Occasionally unplace, occasionally a no-op move.
        roll = rng.random()
        if roll < 0.1:
            srv = UNPLACED
        else:
            srv = int(rng.integers(0, infra.m))
        preview = state.score_move(vm, srv)
        committed = state.apply_move(vm, srv)
        assert preview.violations == committed.violations
        assert np.allclose(preview.objectives, committed.objectives)

        objectives, violations = evaluator.assess(state.assignment)
        assert state.violations == violations, f"step {step}"
        assert np.allclose(
            state.objectives, objectives.as_array(), rtol=1e-9, atol=1e-9
        ), f"step {step}"

    # Structured parity at the end of the walk: every per-term delta of
    # the verify() report must be clean.
    report = state.verify(strict=False)
    assert report.ok, report.format()


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_score_move_equals_full_rescore(instance, seed):
    """score_move's preview must equal evaluating the mutated genome
    from scratch — without mutating the tracked assignment."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    genome = rng.integers(0, infra.m, size=request.n)
    compiled = CompiledProblem.compile(infra, request)
    state = compiled.incremental(genome.copy(), include_assignment=True)
    evaluator = compiled.evaluator(include_assignment_constraint=True)

    for _ in range(10):
        vm = int(rng.integers(0, request.n))
        srv = int(rng.integers(0, infra.m))
        preview = state.score_move(vm, srv)
        mutated = state.assignment.copy()
        mutated[vm] = srv
        objectives, violations = evaluator.assess(mutated)
        assert preview.violations == violations
        assert np.allclose(
            preview.objectives, objectives.as_array(), rtol=1e-9, atol=1e-9
        )
        assert np.array_equal(state.assignment, genome)


# ----------------------------------------------------------------------
# Differential-oracle walks on generated scenarios (three sizes).
# These replace the former ad-hoc parity loops for realistic instances:
# the oracle reaches a random target assignment through 200+ apply_move
# steps, checkpoints per-term parity along the way, and must report
# zero mismatches.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("servers,vms", [(8, 16), (16, 32), (32, 64)])
def test_differential_oracle_long_walks(servers, vms):
    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=0.85
    )
    scenario = ScenarioGenerator(spec, seed=servers).generate()
    merged, _owner = Request.concatenate(scenario.requests)
    rng = np.random.default_rng(1000 + servers)

    target = rng.integers(0, servers, size=merged.n)
    target[rng.random(merged.n) < 0.1] = UNPLACED
    previous = rng.integers(0, servers, size=merged.n)

    oracle = DifferentialOracle(
        scenario.infrastructure, merged, previous_assignment=previous
    )
    detours = max(2, -(-200 // merged.n))  # ceil: walk length >= 200 moves
    assert (detours + 1) * merged.n >= 200
    report = oracle.replay(
        target, seed=rng, detours=detours, checkpoint_every=50, cp=False
    )
    assert report.ok, report.format()
    assert report.checks >= (detours + 1) * merged.n
