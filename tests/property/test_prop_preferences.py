"""Property tests: ceteris-paribus preference selection is total,
deterministic, permutation-invariant and lexicographically sound."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.market.preferences import (
    PREFERENCE_CRITERIA,
    parse_preference,
    select_index,
)

#: (k, 3) fronts matching the evaluator's objective layout.  float32
#: widths keep values exactly representable so permutations cannot
#: perturb comparisons.
fronts = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 32), st.just(3)),
    elements=st.floats(0, 1e6, allow_nan=False, width=32),
)

#: Random valid specs: a non-empty prefix of the criteria, one name per
#: objective column (the parser rejects duplicate columns).
_BY_COLUMN: dict[int, list[str]] = {}
for _name, _col in PREFERENCE_CRITERIA.items():
    _BY_COLUMN.setdefault(_col, []).append(_name)


@st.composite
def specs(draw):
    columns = draw(st.permutations(sorted(_BY_COLUMN)))
    length = draw(st.integers(1, len(columns)))
    names = [draw(st.sampled_from(sorted(_BY_COLUMN[c]))) for c in columns]
    return ">".join(names[:length])


@given(fronts, specs())
@settings(max_examples=80, deadline=None)
def test_selection_is_total_and_in_range(front, spec):
    idx = select_index(front, parse_preference(spec))
    assert 0 <= idx < front.shape[0]


@given(fronts, specs())
@settings(max_examples=80, deadline=None)
def test_selection_is_deterministic(front, spec):
    order = parse_preference(spec)
    assert order.select(front) == order.select(front.copy())
    assert select_index(front, order) == select_index(front, order)


@given(fronts, specs(), st.randoms(use_true_random=False))
@settings(max_examples=80, deadline=None)
def test_selected_vector_is_permutation_invariant(front, spec, rng):
    order = parse_preference(spec)
    baseline = front[order.select(front)]
    permutation = list(range(front.shape[0]))
    rng.shuffle(permutation)
    shuffled = front[np.asarray(permutation)]
    np.testing.assert_array_equal(
        shuffled[order.select(shuffled)], baseline
    )


@given(fronts, specs())
@settings(max_examples=80, deadline=None)
def test_selected_row_is_the_lexicographic_minimum(front, spec):
    order = parse_preference(spec)
    chosen = order.key(front[order.select(front)])
    assert all(chosen <= order.key(row) for row in front)


@given(fronts)
@settings(max_examples=60, deadline=None)
def test_ideal_point_fallback_is_total_and_stable(front):
    idx = select_index(front, None)
    assert 0 <= idx < front.shape[0]
    assert select_index(front.copy(), None) == idx
