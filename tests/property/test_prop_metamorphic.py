"""Metamorphic-law property tests, end to end through real allocators.

Every law in :mod:`repro.verify.metamorphic` is a theorem of the
Section III model equations, so it must hold for *any* placement — in
particular for placements produced by the actual allocators on
generated scenarios.  Each test below allocates a window, then pushes
the resulting assignment through the laws and asserts zero violations.
"""

import numpy as np
import pytest

from repro.baselines import (
    BestFitAllocator,
    FirstFitAllocator,
    RoundRobinAllocator,
)
from repro.model.placement import UNPLACED
from repro.verify import (
    ALL_LAWS,
    CapacityInflationLaw,
    CostScalingLaw,
    DuplicateRequestIdempotenceLaw,
    ServerPermutationLaw,
    run_laws,
)
from repro.workloads import ScenarioGenerator, ScenarioSpec

ALLOCATORS = {
    "round_robin": RoundRobinAllocator,
    "first_fit": FirstFitAllocator,
    "best_fit": BestFitAllocator,
}

SIZES = [(6, 10), (10, 24), (20, 40)]


def _scenario(servers, vms, seed, *, tightness=0.8):
    spec = ScenarioSpec(
        servers=servers, datacenters=2, vms=vms, tightness=tightness
    )
    return ScenarioGenerator(spec, seed=seed).generate()


@pytest.mark.parametrize("name", sorted(ALLOCATORS))
@pytest.mark.parametrize("servers,vms", SIZES)
def test_all_laws_hold_for_allocator_outcomes(name, servers, vms):
    """All four laws hold for every allocator's outcome on each size."""
    scenario = _scenario(servers, vms, seed=servers + vms)
    outcome = ALLOCATORS[name]().allocate(
        scenario.infrastructure, scenario.requests
    )
    rng = np.random.default_rng(7)
    violations = run_laws(
        scenario.infrastructure,
        scenario.requests,
        outcome.assignment,
        rng=rng,
    )
    assert not violations, "\n".join(str(v) for v in violations)


def test_laws_hold_with_window_dynamics():
    """Laws also hold when previous assignments feed the migration and
    downtime terms (the cross-window allocation path)."""
    scenario = _scenario(8, 16, seed=3)
    outcome = RoundRobinAllocator().allocate(
        scenario.infrastructure, scenario.requests
    )
    rng = np.random.default_rng(11)
    previous = rng.integers(
        0, scenario.infrastructure.m, size=outcome.assignment.size
    )
    violations = run_laws(
        scenario.infrastructure,
        scenario.requests,
        outcome.assignment,
        rng=rng,
        previous_assignment=previous,
    )
    assert not violations, "\n".join(str(v) for v in violations)


def test_laws_hold_on_overcommitted_scenarios():
    """The laws are theorems even when the assignment is infeasible
    (overcommitted instances with rejections and capacity overruns)."""
    scenario = _scenario(4, 24, seed=5, tightness=1.6)
    rng = np.random.default_rng(13)
    n = sum(r.n for r in scenario.requests)
    # A deliberately bad assignment: everything crammed at random.
    assignment = rng.integers(0, scenario.infrastructure.m, size=n)
    assignment[rng.random(n) < 0.15] = UNPLACED
    violations = run_laws(
        scenario.infrastructure,
        scenario.requests,
        assignment,
        rng=rng,
    )
    assert not violations, "\n".join(str(v) for v in violations)


@pytest.mark.parametrize(
    "law_cls",
    [
        ServerPermutationLaw,
        CapacityInflationLaw,
        CostScalingLaw,
        DuplicateRequestIdempotenceLaw,
    ],
)
def test_each_law_runs_individually(law_cls):
    """Each law can be selected on its own through run_laws(laws=...)."""
    scenario = _scenario(6, 12, seed=1)
    outcome = FirstFitAllocator().allocate(
        scenario.infrastructure, scenario.requests
    )
    violations = run_laws(
        scenario.infrastructure,
        scenario.requests,
        outcome.assignment,
        rng=np.random.default_rng(2),
        laws=[law_cls()],
    )
    assert not violations, "\n".join(str(v) for v in violations)


def test_all_laws_catalog_is_complete():
    """ISSUE acceptance: at least the four documented laws are active."""
    names = {law.name for law in ALL_LAWS}
    assert {
        "server_permutation",
        "capacity_inflation",
        "cost_scaling",
        "duplicate_request_idempotence",
    } <= names
