"""Property tests: platform-state ledger and migration-plan invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Placement, PlatformState
from repro.model.placement import UNPLACED
from repro.scheduler import plan_migration

from tests.property.test_prop_constraints_objectives import instances


@given(instances(), st.integers(0, 2**31 - 1), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_commit_release_cancel_out(instance, seed, tenants):
    infra, request = instance
    rng = np.random.default_rng(seed)
    state = PlatformState(infra)
    keys = []
    for t in range(tenants):
        assignment = rng.integers(0, infra.m, size=request.n)
        placement = Placement(assignment=assignment, infrastructure=infra)
        state.commit(f"t{t}", placement, request)
        keys.append(f"t{t}")
    state.verify_consistency()
    rng.shuffle(keys)
    for key in keys:
        state.release(key)
    assert np.allclose(state.committed_usage, 0.0, atol=1e-9)
    assert state.tenants() == ()


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_release_order_independent(instance, seed):
    infra, request = instance

    def build(order):
        state = PlatformState(infra)
        local = np.random.default_rng(seed)
        placements = {
            f"t{t}": Placement(
                assignment=local.integers(0, infra.m, size=request.n),
                infrastructure=infra,
            )
            for t in range(4)
        }
        for key, placement in placements.items():
            state.commit(key, placement, request)
        for key in order:
            state.release(key)
        return state.committed_usage.copy()

    a = build(["t0", "t2"])
    b = build(["t2", "t0"])
    assert np.allclose(a, b, atol=1e-9)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_migration_plan_partition(instance, seed):
    """Every resource is classified exactly once (move/boot/shutdown/stay)."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    previous = rng.integers(0, infra.m, size=request.n)
    new = rng.integers(0, infra.m, size=request.n)
    previous[rng.random(request.n) < 0.2] = UNPLACED
    new[rng.random(request.n) < 0.2] = UNPLACED
    plan = plan_migration(previous, new, request)

    moved = {m.resource for m in plan.moves}
    boots = set(plan.boots)
    downs = set(plan.shutdowns)
    assert not (moved & boots) and not (moved & downs) and not (boots & downs)
    stayed = set(range(request.n)) - moved - boots - downs
    for k in stayed:
        assert previous[k] == new[k] or (
            previous[k] == UNPLACED and new[k] == UNPLACED
        )
    # Eq. 26: total cost equals the sum of moved resources' charges
    # (tolerance: summation order differs between the two paths).
    expect = request.migration_cost[sorted(moved)].sum() if moved else 0.0
    assert abs(plan.total_cost - float(expect)) < 1e-9 * (1.0 + abs(expect))


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_migration_plan_symmetry(instance, seed):
    """Reversing the diff preserves the move count (sources/destinations
    swap, boots and shutdowns exchange roles)."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    previous = rng.integers(0, infra.m, size=request.n)
    new = rng.integers(0, infra.m, size=request.n)
    forward = plan_migration(previous, new, request)
    backward = plan_migration(new, previous, request)
    assert forward.size == backward.size
    assert set(forward.boots) == set(backward.shutdowns)
    assert set(forward.shutdowns) == set(backward.boots)
