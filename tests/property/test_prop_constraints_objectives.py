"""Property tests: batch evaluation must equal per-genome evaluation,
and model invariants must hold on arbitrary instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import ConstraintSet
from repro.model import AttributeSchema, Infrastructure, PlacementGroup, Request
from repro.model.placement import UNPLACED, Placement
from repro.objectives import PopulationEvaluator, qos_from_load
from repro.types import PlacementRule


@st.composite
def instances(draw):
    """A random small (infrastructure, request) pair with groups."""
    m = draw(st.integers(2, 10))
    g = draw(st.integers(1, min(3, m)))
    n = draw(st.integers(1, 12))
    h = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))

    capacity = rng.uniform(10, 100, size=(m, h))
    server_dc = np.sort(rng.integers(0, g, size=m))
    # Guarantee every dc id occurs.
    server_dc[:g] = np.arange(g)
    server_dc = np.sort(server_dc)
    infra = Infrastructure(
        capacity=capacity,
        capacity_factor=rng.uniform(0.5, 1.0, size=(m, h)),
        operating_cost=rng.uniform(0.1, 5.0, size=m),
        usage_cost=rng.uniform(0.1, 5.0, size=m),
        max_load=rng.uniform(0.3, 0.95, size=(m, h)),
        max_qos=rng.uniform(0.5, 0.99, size=(m, h)),
        server_datacenter=server_dc,
        schema=AttributeSchema(names=tuple(f"a{i}" for i in range(h))),
    )

    groups = []
    if n >= 2 and draw(st.booleans()):
        rule = draw(st.sampled_from(list(PlacementRule)))
        size = draw(st.integers(2, min(4, n)))
        members = tuple(
            int(x) for x in rng.choice(n, size=size, replace=False)
        )
        groups.append(PlacementGroup(rule, members))

    request = Request(
        demand=rng.uniform(0.0, 30.0, size=(n, h)),
        qos_guarantee=rng.uniform(0.5, 1.0, size=n),
        downtime_cost=rng.uniform(0.0, 10.0, size=n),
        migration_cost=rng.uniform(0.0, 10.0, size=n),
        groups=tuple(groups),
        schema=infra.schema,
    )
    return infra, request


@given(instances(), st.integers(0, 2**31 - 1), st.booleans())
@settings(max_examples=40, deadline=None)
def test_batch_evaluation_equals_single(instance, seed, with_unplaced):
    infra, request = instance
    rng = np.random.default_rng(seed)
    population = rng.integers(0, infra.m, size=(8, request.n))
    if with_unplaced:
        mask = rng.random(population.shape) < 0.15
        population[mask] = UNPLACED
    evaluator = PopulationEvaluator(
        infra, request, include_assignment_constraint=True
    )
    result = evaluator.evaluate_population(population)
    for i in range(population.shape[0]):
        vector = evaluator.evaluate(population[i]).as_array()
        assert np.allclose(vector, result.objectives[i], rtol=1e-9, atol=1e-9)
        assert evaluator.violations(population[i]) == result.violations[i]


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_constraint_batch_equals_single(instance, seed):
    infra, request = instance
    rng = np.random.default_rng(seed)
    population = rng.integers(0, infra.m, size=(10, request.n))
    constraint_set = ConstraintSet(infra, request)
    batch = constraint_set.batch_violations(population)
    single = [constraint_set.violations(row) for row in population]
    assert batch.tolist() == single


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_placement_dense_roundtrip(instance, seed):
    infra, request = instance
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, infra.m, size=request.n)
    assignment[rng.random(request.n) < 0.2] = UNPLACED
    placement = Placement(assignment=assignment, infrastructure=infra)
    back = Placement.from_dense(placement.to_dense(), infra)
    assert np.array_equal(back.assignment, assignment)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_usage_conservation(instance, seed):
    """Total placed demand equals column sums of the usage matrix."""
    infra, request = instance
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, infra.m, size=request.n)
    placement = Placement(assignment=assignment, infrastructure=infra)
    usage = placement.server_usage(request.demand)
    assert np.allclose(usage.sum(axis=0), request.demand.sum(axis=0))


@given(
    st.floats(0.0, 0.99),
    st.floats(0.0, 0.99),
    st.lists(st.floats(0.0, 5.0), min_size=2, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_qos_monotone_in_load(max_load, max_qos, loads):
    """Eq. 24 is non-increasing in load and never exceeds QM."""
    loads = np.sort(np.asarray(loads))
    qos = qos_from_load(loads, max_load, max_qos)
    assert np.all(np.diff(qos) <= 1e-12)
    assert np.all(qos <= max_qos + 1e-12)
    assert np.all(qos >= 0)


@given(instances(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_objectives_nonnegative(instance, seed):
    infra, request = instance
    rng = np.random.default_rng(seed)
    population = rng.integers(0, infra.m, size=(6, request.n))
    evaluator = PopulationEvaluator(infra, request)
    result = evaluator.evaluate_population(population)
    assert np.all(result.objectives >= -1e-12)
    assert np.all(result.violations >= 0)
