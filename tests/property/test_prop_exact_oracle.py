"""Brute-force oracle: on tiny instances, exhaustive enumeration of all
m^n placements is tractable and gives ground truth for feasibility and
optimal cost.  CP and ILP must agree with it exactly."""

import itertools

import pytest

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import ConstraintSet
from repro.cp import CPSolver, SearchLimits
from repro.lp import solve_ilp
from repro.model import AttributeSchema, Infrastructure, PlacementGroup, Request
from repro.types import PlacementRule


@st.composite
def tiny_instances(draw):
    """m <= 4 servers, n <= 5 resources: at most 4^5 = 1024 placements."""
    m = draw(st.integers(2, 4))
    n = draw(st.integers(1, 5))
    g = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)

    server_dc = np.zeros(m, dtype=np.int64)
    if g == 2:
        server_dc[m // 2 :] = 1
    schema = AttributeSchema(names=("cpu", "ram"))
    infra = Infrastructure(
        capacity=rng.uniform(5, 20, size=(m, 2)),
        capacity_factor=rng.uniform(0.8, 1.0, size=(m, 2)),
        operating_cost=rng.uniform(0.5, 3.0, size=m),
        usage_cost=rng.uniform(0.5, 3.0, size=m),
        max_load=np.full((m, 2), 0.8),
        max_qos=np.full((m, 2), 0.95),
        server_datacenter=server_dc,
        schema=schema,
    )

    groups = []
    if n >= 2 and draw(st.booleans()):
        rule = draw(st.sampled_from(list(PlacementRule)))
        size = draw(st.integers(2, min(3, n)))
        members = tuple(int(x) for x in rng.choice(n, size=size, replace=False))
        groups.append(PlacementGroup(rule, members))

    request = Request(
        demand=rng.uniform(1, 8, size=(n, 2)),
        qos_guarantee=rng.uniform(0.6, 0.95, size=n),
        downtime_cost=rng.uniform(0, 5, size=n),
        migration_cost=rng.uniform(0, 5, size=n),
        groups=tuple(groups),
        schema=schema,
    )
    return infra, request


def _brute_force(infra, request):
    """(is_feasible, optimal_cost) by full enumeration."""
    constraint_set = ConstraintSet(infra, request, include_assignment=False)
    rate = infra.operating_cost + infra.usage_cost
    best = np.inf
    feasible = False
    for combo in itertools.product(range(infra.m), repeat=request.n):
        genome = np.asarray(combo, dtype=np.int64)
        if constraint_set.violations(genome) == 0:
            feasible = True
            cost = float(rate[genome].sum())
            if cost < best:
                best = cost
    return feasible, best


@given(tiny_instances())
@settings(max_examples=25, deadline=None)
def test_cp_matches_brute_force(instance):
    infra, request = instance
    truth_feasible, truth_cost = _brute_force(infra, request)
    solver = CPSolver(
        infra, request, limits=SearchLimits(max_nodes=1_000_000, time_limit=30)
    )
    solution = solver.optimize()
    assert solution.proved, "tiny instance must be fully explored"
    assert solution.found == truth_feasible
    if truth_feasible:
        assert solution.cost == pytest.approx(truth_cost, rel=1e-9)


@given(tiny_instances())
@settings(max_examples=15, deadline=None)
def test_ilp_matches_brute_force(instance):
    infra, request = instance
    truth_feasible, truth_cost = _brute_force(infra, request)
    solution = solve_ilp(infra, request, time_limit=30)
    if truth_feasible:
        assert solution.optimal
        assert solution.cost == pytest.approx(truth_cost, rel=1e-6)
    else:
        assert solution.infeasible

