"""Property tests: live admission preserves the PR 3 invariant catalog.

Whatever seeded workload streams through the service's admission path,
(a) every accepted placement satisfies the capacity and group
invariants, (b) a rejected request mutates nothing — ledger bytes and
epoch included — and (c) the admission log replay always converges to
the live residents."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.request import Request
from repro.service import ServiceState, replay_admission_log
from repro.verify import CheckContext, run_invariants
from repro.workloads import ScenarioGenerator, ScenarioSpec

_PLACEMENT_INVARIANTS = (
    "assignment_well_formed",
    "capacity_respected",
    "group_closure",
)


@st.composite
def service_sessions(draw):
    spec = ScenarioSpec(
        servers=draw(st.integers(6, 16)),
        datacenters=draw(st.integers(1, 2)),
        vms=draw(st.integers(12, 32)),
        max_request_size=draw(st.integers(2, 4)),
        tightness=draw(st.floats(0.4, 0.9)),
    )
    seed = draw(st.integers(0, 2**31 - 1))
    batches = draw(st.integers(1, 5))
    return spec, seed, batches


def _stream(spec, seed, batches):
    """Drive a seeded request stream through admission micro-batches."""
    scenario = ScenarioGenerator(spec, seed=seed).generate()
    state = ServiceState(scenario.infrastructure, seed=seed)
    requests = list(scenario.requests)
    per_batch = max(1, len(requests) // batches)
    for index in range(batches):
        chunk = requests[index * per_batch : (index + 1) * per_batch]
        state.admit(
            arrivals=[(f"p{index}-{j}", r) for j, r in enumerate(chunk)]
        )
    return scenario, state


@given(service_sessions())
@settings(max_examples=20, deadline=None)
def test_accepted_placements_satisfy_invariants(setup):
    spec, seed, batches = setup
    scenario, state = _stream(spec, seed, batches)
    residents = state.residents()
    if not residents:
        return
    keys = sorted(residents)
    requests = [state.scheduler.request_for(k) for k in keys]
    assignment = np.concatenate(
        [np.asarray(residents[k], dtype=np.int64) for k in keys]
    )
    report = run_invariants(
        CheckContext(
            infrastructure=scenario.infrastructure,
            requests=requests,
            assignment=assignment,
        ),
        names=_PLACEMENT_INVARIANTS,
    )
    assert report.ok, report.format()
    state.scheduler.state.verify_consistency()


@given(service_sessions())
@settings(max_examples=20, deadline=None)
def test_rejects_never_mutate_state(setup):
    spec, seed, batches = setup
    scenario, state = _stream(spec, seed, batches)
    usage_before = state.scheduler.state.committed_usage.copy()
    residents_before = state.residents()

    # A request no estate can host: demand far beyond total capacity.
    impossible = Request(
        demand=np.full((2, scenario.infrastructure.h), 1e9),
        qos_guarantee=np.full(2, 0.9),
        downtime_cost=np.ones(2),
        migration_cost=np.ones(2),
    )
    report = state.admit(arrivals=[("impossible", impossible)])
    assert "impossible" in report.rejected
    assert not state.is_hosted("impossible")
    usage_after = state.scheduler.state.committed_usage
    assert usage_after.tobytes() == usage_before.tobytes()
    assert state.residents() == residents_before
    state.scheduler.state.verify_consistency()


@given(service_sessions())
@settings(max_examples=10, deadline=None)
def test_replay_converges_to_live_residents(setup):
    spec, seed, batches = setup
    scenario, state = _stream(spec, seed, batches)
    replayed = replay_admission_log(
        scenario.infrastructure, state.log, seed=seed
    )
    assert replayed.residents() == state.residents()
    live = state.scheduler.state.committed_usage
    assert replayed.scheduler.state.committed_usage.tobytes() == live.tobytes()
